"""E13 -- Multi-tenant concurrency: admission, fairness, congestion pricing.

The paper's §4 e-marketplace serves many trading partners at once; §3.2 C8's
scalability claim only means something under concurrent load.  This
experiment drives the workload manager with **open-loop Poisson arrivals**
(arrivals do not wait for completions, so overload actually overloads) and
measures three things:

* **The saturation knee.**  Sweeping offered load from 30% to 130% of the
  federation's service capacity, p50 stays near the uncontended service
  time while p99 rises super-linearly once queueing sets in, and bounded
  queues convert overload into shed load (goodput < 1) instead of unbounded
  latency.
* **Fairness under an aggressive tenant.**  A light tenant (well under its
  fair share) shares the federation with a heavy tenant submitting at 2x
  capacity.  Weighted-fair scheduling keeps the light tenant's p95 within
  2x of its uncontended p95; FIFO makes it queue behind the aggressor's
  backlog and blows far past that.
* **Congestion-priced placement.**  With a background tenant pinning one
  replica site, the agoric optimizer's congestion-inflated bids steer a
  probe query's scans to the idle replica; flattening the congestion curve
  (alpha = 0) removes the signal and the scans pile onto the busy site.

Everything runs on the simulation clock with seeded arrivals, so two runs
produce byte-identical tables (the determinism CI job relies on this).
"""

import math
import os
import random

from _bench_util import report, write_json
from repro.core import DataType, Field, Schema, Table
from repro.core.errors import QueryRejectedError
from repro.federation import (
    FederatedEngine,
    FederationCatalog,
    WorkloadManager,
)
from repro.sim import EventLoop, SimClock

SEED = 20013
SITES = [f"s{i}" for i in range(3)]
FRAGMENTS = 6
ROWS_PER_FRAGMENT = 20
SLOTS = 3
QUERY = "select count(*) from items"
HEAVY_QUERY = "select count(*) from ads"
# Env-overridable so CI can run a smaller smoke configuration.
QUERIES = int(os.environ.get("E13_QUERIES", "120"))
LIGHT_QUERIES = int(os.environ.get("E13_LIGHT_QUERIES", "24"))
PROBES = int(os.environ.get("E13_PROBES", "10"))
LOADS = [0.3, 0.6, 0.9, 1.3]
QUEUE_LIMIT = 40


def build(congestion_alpha=0.5, with_ads=False):
    """items(k, v) hash-fragmented with RF=2; optionally a small ads table."""
    catalog = FederationCatalog(SimClock())
    for name in SITES:
        catalog.make_site(name, congestion_alpha=congestion_alpha)
    schema = Schema(
        "items", (Field("k", DataType.STRING), Field("v", DataType.INTEGER))
    )
    total = FRAGMENTS * ROWS_PER_FRAGMENT
    table = Table(schema, [(f"k{i:04d}", i) for i in range(total)])
    placement = [
        [SITES[i % len(SITES)], SITES[(i + 1) % len(SITES)]]
        for i in range(FRAGMENTS)
    ]
    catalog.load_fragmented(table, FRAGMENTS, placement)
    if with_ads:
        # The aggressive tenant's table: one cheap fragment per site, so its
        # queries are short but touch (and congest) every site.
        ads_schema = Schema("ads", (Field("a", DataType.STRING),))
        ads = Table(ads_schema, [(f"a{i}",) for i in range(6)])
        catalog.load_fragmented(
            ads, 3, [[s] for s in SITES], scan_cost_seconds=0.002
        )
    engine = FederatedEngine(catalog)
    loop = EventLoop(catalog.clock)
    return catalog, engine, loop


def solo_response_seconds(sql=QUERY, **build_kwargs):
    """Modeled response time of one query on an idle federation."""
    _, engine, _ = build(**build_kwargs)
    return engine.query(sql).report.response_seconds


def poisson_arrivals(rng, rate, count):
    times, now = [], 0.0
    for _ in range(count):
        now += rng.expovariate(rate)
        times.append(now)
    return times


def percentile(values, q):
    """Nearest-rank percentile of a non-empty list."""
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100 * len(ordered)))
    return ordered[rank - 1]


def run_open_loop(arrivals, scheduler="weighted-fair", slots=SLOTS,
                  tenants=(), congestion_alpha=0.5, with_ads=False):
    """Drive one open-loop run: ``arrivals`` is [(time, tenant, sql), ...].

    Returns (completed handles by tenant, shed count).  Arrivals are event-
    loop callbacks, so queries really do arrive while others are in flight.
    """
    _, engine, loop = build(congestion_alpha, with_ads=with_ads)
    manager = WorkloadManager(
        engine, loop, scheduler=scheduler, max_in_flight=slots
    )
    for name, kwargs in tenants:
        manager.register_tenant(name, **kwargs)
    handles = {}
    shed = [0]

    for when, tenant, sql in sorted(arrivals):
        def arrive(tenant=tenant, sql=sql):
            try:
                handle = manager.submit(sql, tenant=tenant)
            except QueryRejectedError:
                shed[0] += 1
            else:
                handles.setdefault(tenant, []).append(handle)

        loop.schedule_at(when, arrive)
    while loop.pending():
        loop.run_next()
    return handles, shed[0]


def latencies(handles):
    return [h.finished_at - h.submitted_at for h in handles]


def test_e13_saturation_knee(benchmark):
    """Open-loop load sweep: p99 turns super-linear past the knee and the
    bounded queue sheds overload instead of queueing without bound."""
    service = solo_response_seconds()
    capacity = SLOTS / service  # queries/sec the federation can absorb

    rows = []
    stats = {}
    for load in LOADS:
        arrival_times = poisson_arrivals(
            random.Random(SEED + int(load * 100)), load * capacity, QUERIES
        )
        handles, shed = run_open_loop(
            [(t, "default", QUERY) for t in arrival_times],
            tenants=[("default", {"queue_limit": QUEUE_LIMIT})],
        )
        done = handles.get("default", [])
        finished = latencies(done)
        goodput = len(finished) / QUERIES
        horizon = max(h.finished_at for h in done) if done else 0.0
        stats[load] = {
            "p50": percentile(finished, 50),
            "p95": percentile(finished, 95),
            "p99": percentile(finished, 99),
            "goodput": goodput,
            "shed": shed,
            "throughput_qps": len(done) / horizon if horizon else 0.0,
        }
        rows.append([
            f"{load:.0%}", QUERIES, shed, goodput,
            stats[load]["p50"], stats[load]["p95"], stats[load]["p99"],
        ])

    report(
        "e13_saturation_knee",
        f"E13: open-loop load sweep ({QUERIES} queries/level, {SLOTS} slots, "
        f"queue limit {QUEUE_LIMIT}, service {service:.3f}s)",
        ["offered load", "queries", "shed", "goodput", "p50 s", "p95 s",
         "p99 s"],
        rows,
    )

    # Machine-readable summary for tooling; everything here is *modeled*
    # (simulation-clock) time, so the file is deterministic too.  The
    # per-query bytes figure comes from one probe on an idle federation.
    probe = build()[1].query(QUERY, advance_clock=False)
    write_json(
        "BENCH_E13",
        {
            "queries_per_level": QUERIES,
            "slots": SLOTS,
            "queue_limit": QUEUE_LIMIT,
            "service_seconds": round(service, 6),
            "capacity_qps": round(capacity, 4),
            "bytes_shipped_per_query": probe.report.bytes_shipped,
            "rows_shipped_per_query": probe.report.rows_shipped,
            "loads": {
                f"{load:.0%}": {
                    "p50_s": round(stats[load]["p50"], 6),
                    "p95_s": round(stats[load]["p95"], 6),
                    "p99_s": round(stats[load]["p99"], 6),
                    "goodput": round(stats[load]["goodput"], 4),
                    "shed": stats[load]["shed"],
                    "throughput_qps": round(
                        stats[load]["throughput_qps"], 4
                    ),
                }
                for load in LOADS
            },
        },
    )

    low, knee, high = stats[LOADS[0]], stats[LOADS[2]], stats[LOADS[-1]]
    # Under light load nothing queues and nothing is shed.
    assert low["goodput"] == 1.0
    assert low["p99"] < 4 * service
    # Approaching saturation (30% -> 90%: load x3) p99 grows super-linearly:
    # the latency ratio dwarfs the load ratio.  (Past saturation the bounded
    # queue caps latency by shedding, so the knee is where queueing bites.)
    assert knee["p99"] / low["p99"] > 1.5 * (LOADS[2] / LOADS[0])
    # Past saturation the bounded queue converts overload into shed load.
    assert high["goodput"] < 1.0
    assert high["shed"] > 0
    # The knee is a knee: latency is monotone across the sweep.
    p99s = [stats[load]["p99"] for load in LOADS]
    assert p99s == sorted(p99s)

    benchmark(lambda: run_open_loop(
        [(t, "default", QUERY) for t in poisson_arrivals(
            random.Random(SEED), 0.5 * capacity, 12
        )],
        tenants=[("default", {"queue_limit": QUEUE_LIMIT})],
    ))


def fairness_arrivals():
    """One light tenant well under its share; one aggressor at 2x capacity."""
    service = solo_response_seconds(congestion_alpha=0.1, with_ads=True)
    capacity = SLOTS / service
    light_times = poisson_arrivals(
        random.Random(SEED), 0.25 * capacity, LIGHT_QUERIES
    )
    horizon = light_times[-1]
    heavy_rng = random.Random(SEED + 1)
    heavy_times = []
    now = 0.0
    while True:
        now += heavy_rng.expovariate(2.0 * capacity)
        if now > horizon:
            break
        heavy_times.append(now)
    light = [(t, "light", QUERY) for t in light_times]
    heavy = [(t, "heavy", HEAVY_QUERY) for t in heavy_times]
    return light, heavy


def run_fairness(scheduler, light, heavy):
    handles, _ = run_open_loop(
        light + heavy,
        scheduler=scheduler,
        congestion_alpha=0.1,
        with_ads=True,
    )
    return latencies(handles["light"])


def test_e13_weighted_fair_protects_the_light_tenant(benchmark):
    """The aggressive-tenant ablation: same arrivals, only the scheduler
    differs.  Weighted-fair keeps the light tenant near its uncontended
    latency; FIFO lets the aggressor's backlog starve it."""
    light, heavy = fairness_arrivals()
    solo_p95 = percentile(run_fairness("fifo", light, []), 95)
    fair_p95 = percentile(run_fairness("weighted-fair", light, heavy), 95)
    fifo_p95 = percentile(run_fairness("fifo", light, heavy), 95)

    report(
        "e13_fairness",
        f"E13: light-tenant p95 vs a 2x-capacity aggressor "
        f"({LIGHT_QUERIES} light queries, {len(heavy)} heavy, {SLOTS} slots)",
        ["configuration", "light p95 s", "slowdown vs solo"],
        [
            ["uncontended", solo_p95, 1.0],
            ["weighted-fair", fair_p95, fair_p95 / solo_p95],
            ["fifo", fifo_p95, fifo_p95 / solo_p95],
        ],
    )

    # The acceptance bar: fair keeps the light tenant within 2x of its
    # uncontended p95; FIFO does not.
    assert fair_p95 <= 2 * solo_p95
    assert fifo_p95 > 2 * solo_p95
    assert fifo_p95 > fair_p95

    benchmark(lambda: run_fairness("weighted-fair", light[:6], heavy[:20]))


def placement_shift(alpha):
    """Probe scan placement while a background tenant pins the hot site.

    Both replicas of every ``shared`` fragment exist on ``a_hot`` (also the
    only host of the background tenant's ``pinned`` table) and ``b_cold``.
    ``load_price_factor=0`` silences the backlog price term, isolating the
    congestion signal; the hot site sorts first so price *ties* land on it.
    """
    catalog = FederationCatalog(SimClock())
    for name in ("a_hot", "b_cold"):
        catalog.make_site(
            name, load_price_factor=0.0, congestion_alpha=alpha
        )
    shared_schema = Schema("shared", (Field("k", DataType.STRING),))
    shared = Table(shared_schema, [(f"k{i}",) for i in range(40)])
    catalog.load_fragmented(
        shared, 2, [["a_hot", "b_cold"], ["a_hot", "b_cold"]]
    )
    pinned_schema = Schema("pinned", (Field("p", DataType.STRING),))
    pinned = Table(pinned_schema, [(f"p{i}",) for i in range(400)])
    catalog.load_fragmented(pinned, 1, [["a_hot"]])
    engine = FederatedEngine(catalog)
    loop = EventLoop(catalog.clock)
    manager = WorkloadManager(engine, loop, max_in_flight=4)

    hot = total = 0
    for _ in range(PROBES):
        manager.submit("select count(*) from pinned", tenant="background")
        probe = manager.submit("select count(*) from shared", tenant="probe")
        manager.drain()
        for choice in probe.result().plan.assignments["shared"].choices:
            total += 1
            hot += choice.site_name == "a_hot"
    return hot, total


def test_e13_congestion_pricing_steers_placement(benchmark):
    """With the congestion curve flattened the probe's scans pile onto the
    busy (tie-winning) site; priced congestion moves them to the idle
    replica -- load balancing emerging from the economics (§3.2 C8)."""
    blind_hot, blind_total = placement_shift(alpha=0.0)
    priced_hot, priced_total = placement_shift(alpha=0.5)

    report(
        "e13_congestion_placement",
        f"E13: probe scan placement under a pinned hot site "
        f"({PROBES} probes, 2 fragments each)",
        ["congestion pricing", "scans on hot site", "scans on cold site",
         "hot share"],
        [
            ["off (alpha=0)", blind_hot, blind_total - blind_hot,
             blind_hot / blind_total],
            ["on (alpha=0.5)", priced_hot, priced_total - priced_hot,
             priced_hot / priced_total],
        ],
    )

    # Without the congestion signal every scan lands on the loaded site.
    assert blind_hot == blind_total
    # With it, the market clears the hot site entirely.
    assert priced_hot == 0

    benchmark(lambda: placement_shift(alpha=0.5))

"""E2 -- One body of content needs both fetch strategies (§3.2 C5).

Claim: "a modern content integration solution must often employ both
strategies over a single body of content.  For example the address of the
hotel and its amenities are static data and can be fetched in advance, while
room availability is highly volatile and must be fetched on demand."

Setup: amenity data lives behind expensive scraped pages (3s per fetch);
availability behind cheap live reservation feeds.  Three configurations run
the traveler query under continuous updates:

* all-live: everything fetch-on-demand;
* all-materialized: both tables served from periodically refreshed views;
* hybrid: static data from a view, availability on demand.

Expected shape: hybrid matches all-live on correctness (zero error) and
all-materialized on latency; each pure strategy loses on one axis.

The semantic-cache ablation (DESIGN.md §6) is in the second test: region
coverage vs exact-key caching on an overlapping query stream.
"""

import os
import random

from _bench_util import report
from repro.connect.source import LiveSource, Predicate
from repro.core import DataType, Field, Schema, Table
from repro.federation import FederatedEngine, FederationCatalog, SemanticCache
from repro.federation.engine import LIVE_ONLY
from repro.sim import EventLoop, SimClock
from repro.workloads import generate_hotels
from repro.workloads.hotels import AVAILABILITY_SCHEMA, STATIC_SCHEMA

QUERY = (
    "select s.hotel_id from hotel_static s "
    "join hotel_availability a on s.hotel_id = a.hotel_id "
    "where s.miles_to_airport <= 10 and s.has_health_club = true "
    "and a.corporate_rate <= 200 and a.rooms_available > 0"
)

STATIC_FETCH_COST = 3.0  # scraping amenity pages is slow
# Env-overridable so CI can run a tiny smoke configuration (see S6 in the
# workflow): E2_ROUNDS=3 E2_ROUND_SECONDS=30 E2_COVERAGE_QUERIES=12.
ROUNDS = int(os.environ.get("E2_ROUNDS", "20"))
ROUND_SECONDS = float(os.environ.get("E2_ROUND_SECONDS", "120.0"))
COVERAGE_QUERIES = int(os.environ.get("E2_COVERAGE_QUERIES", "120"))


def build(seed=1, cache_coverage=None):
    clock = SimClock()
    loop = EventLoop(clock)
    market = generate_hotels(seed=seed, chain_count=20, hotels_per_chain=4)
    market.schedule_volatility(loop, random.Random(5), mean_interval=2.0)

    catalog = FederationCatalog(clock)
    chain_sites = {
        chain: catalog.make_site(f"res-{i:02d}").name
        for i, chain in enumerate(market.chains)
    }
    # Availability: one cheap live fragment per chain.
    catalog.create_table("hotel_availability", AVAILABILITY_SCHEMA)
    for i, chain in enumerate(market.chains):
        fragment = catalog.add_fragment(
            "hotel_availability", f"chain-{i}", 4
        )
        catalog.place_replica(
            fragment,
            chain_sites[chain],
            LiveSource(f"avail@{chain}", AVAILABILITY_SCHEMA,
                       lambda chain=chain: market.availability_rows(chain),
                       cost_seconds=0.05, estimated_rows=4),
        )
    # Static amenities: one expensive scraped source.
    catalog.create_table("hotel_static", STATIC_SCHEMA)
    fragment = catalog.add_fragment("hotel_static", "f0", len(market.hotels))
    catalog.place_replica(
        fragment,
        "res-00",
        LiveSource("static-scrape", STATIC_SCHEMA, market.static_rows,
                   cost_seconds=STATIC_FETCH_COST, estimated_rows=len(market.hotels)),
    )
    cache = None
    if cache_coverage is not None:
        cache = SemanticCache(clock, max_rows=200_000, coverage=cache_coverage)
    return clock, loop, market, FederatedEngine(catalog, cache=cache)


def truth_ids(market):
    return {
        h["hotel_id"]
        for h in market.hotels
        if h["miles_to_airport"] <= 10
        and h["has_health_club"]
        and h["corporate_rate"] <= 200
        and h["rooms_available"] > 0
    }


def answer_error(table, market):
    answered = set(table.column("hotel_id"))
    truth = truth_ids(market)
    return len(answered - truth) + len(truth - answered)


def run_config(materialize: list[str], staleness) -> tuple[float, float]:
    clock, loop, market, engine = build()
    for table_name in materialize:
        view = engine.create_materialized_view(
            f"{table_name}_mv", table_name, "res-01", refresh_interval=1800.0
        )
        engine.schedule_view_refresh(view, loop)
    errors = []
    latencies = []
    for round_number in range(ROUNDS):
        loop.run_until(clock.now() + ROUND_SECONDS)
        result = engine.query(QUERY, max_staleness=staleness)
        errors.append(answer_error(result.table, market))
        latencies.append(result.report.response_seconds)
    return sum(errors) / len(errors), sum(latencies) / len(latencies)


def test_e2_hybrid_beats_both_pure_strategies(benchmark):
    live_error, live_latency = run_config([], LIVE_ONLY)
    mat_error, mat_latency = run_config(
        ["hotel_static", "hotel_availability"], None
    )
    hybrid_error, hybrid_latency = run_config(["hotel_static"], None)

    report(
        "e2_hybrid_fetch",
        "E2: fetch strategies over one body of content (static=3s scrape)",
        ["configuration", "mean answer error", "mean latency s"],
        [
            ["all fetch-on-demand", live_error, live_latency],
            ["all materialized", mat_error, mat_latency],
            ["hybrid (paper's rx)", hybrid_error, hybrid_latency],
        ],
    )

    # Paper shape: hybrid is as fresh as live and (nearly) as fast as
    # materialized; each pure strategy loses one axis.
    assert hybrid_error == 0.0
    assert live_error == 0.0
    assert mat_error > 0.0
    assert hybrid_latency < live_latency / 2
    assert mat_latency < live_latency

    clock, loop, market, engine = build()
    engine.create_materialized_view("hotel_static_mv", "hotel_static", "res-01")
    benchmark(lambda: engine.query(QUERY, advance_clock=False))


def test_e2_semantic_cache_vs_exact_key(benchmark):
    """Ablation: predicate-region coverage vs exact-key caching."""
    clock = SimClock()
    schema = Schema("t", (Field("price", DataType.FLOAT),))
    data = Table(schema, [(float(i),) for i in range(500)])
    rng = random.Random(11)

    # Overlapping request stream: per-category regions, narrower each time.
    def request_stream(count):
        for _ in range(count):
            low = float(rng.randrange(0, 450))
            yield (
                Predicate("price", ">=", low),
                Predicate("price", "<=", low + 50.0),
            )

    semantic = SemanticCache(clock, max_rows=100_000)
    semantic.store("t", [], data)  # one whole-table region
    for predicates in request_stream(200):
        semantic.lookup("t", list(predicates))

    exact = SemanticCache(clock, max_rows=100_000)
    # Exact-key policy: only identical predicate sets hit; we emulate it by
    # storing each answered region and never the whole table.
    hits = 0
    misses = 0
    seen = {}
    for predicates in request_stream(200):
        key = frozenset(predicates)
        if key in seen:
            hits += 1
        else:
            misses += 1
            seen[key] = True
    exact_rate = hits / (hits + misses)

    report(
        "e2_cache_ablation",
        "E2 ablation: cache policy hit rates over 200 overlapping range queries",
        ["policy", "hit rate"],
        [
            ["semantic region coverage", semantic.hit_rate],
            ["exact key only", exact_rate],
        ],
    )
    assert semantic.hit_rate > 0.95
    assert semantic.hit_rate > exact_rate

    benchmark(lambda: semantic.lookup(
        "t", [Predicate("price", ">=", 10.0), Predicate("price", "<=", 60.0)]
    ))


def _run_coverage_mode(coverage):
    """Drive the expensive-scrape table through a threshold query stream."""
    clock, loop, market, engine = build(cache_coverage=coverage)
    rng = random.Random(23)
    thresholds = [30.0] + [
        float(rng.randrange(2, 29)) for _ in range(COVERAGE_QUERIES - 1)
    ]
    latencies = []
    for threshold in thresholds:
        result = engine.query(
            "select hotel_id from hotel_static "
            f"where miles_to_airport <= {threshold}"
        )
        latencies.append(result.report.response_seconds)
    return engine, engine.cache, sum(latencies) / len(latencies)


def test_e2_implication_vs_verbatim_coverage(benchmark):
    """Tentpole ablation: implication coverage vs verbatim-subset coverage.

    Both engines cache the 3s-scrape static table and face the same stream
    of ``miles_to_airport <= T`` queries (one wide query, then narrower
    thresholds).  Verbatim coverage only hits on exact region repeats;
    interval subsumption serves every narrower threshold out of the wide
    region with a local residual.
    """
    imp_engine, imp_cache, imp_latency = _run_coverage_mode("implication")
    _, verb_cache, verb_latency = _run_coverage_mode("verbatim")

    report(
        "e2_coverage_ablation",
        f"E2 ablation: cache coverage policy over {COVERAGE_QUERIES} "
        "threshold queries on the 3s-scrape table",
        ["coverage", "hit rate", "implication hits", "mean latency s"],
        [
            [
                "implication (interval subsumption)",
                imp_cache.hit_rate,
                imp_cache.implication_hits,
                imp_latency,
            ],
            [
                "verbatim subset only",
                verb_cache.hit_rate,
                verb_cache.implication_hits,
                verb_latency,
            ],
        ],
    )

    assert imp_cache.hit_rate >= verb_cache.hit_rate
    assert imp_cache.implication_hits > 0
    assert imp_cache.hit_rate > 0.9
    assert imp_latency < verb_latency

    benchmark(lambda: imp_engine.query(
        "select hotel_id from hotel_static where miles_to_airport <= 7.0",
        advance_clock=False,
    ))

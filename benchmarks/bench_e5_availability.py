"""E5 -- Availability: replication, fragmentation, and the combination (§3.2 C8).

Claims, verbatim design points:

* a hot standby "is effective at supporting a high availability
  environment.  Of course, the cost ... is a doubling of all hardware";
* fragmentation delivers "*some of the content all of the time*";
* "a combination of replication and fragmentation can deliver *most of the
  content all of the time*, and is the design of choice".

Setup: 16 content fragments on 8 sites under identical exponential
crash/repair processes (MTTF 500s, MTTR 100s, 20000s horizon, identical
failure seeds across strategies).  We sweep the §3.2 C8 placement
strategies and report mean availability, the fraction of time *all* content
was reachable, and the hardware cost in replicas.
"""

import random

from _bench_util import report
from repro.core import DataType, Field, Schema, Table
from repro.federation import (
    AvailabilityProbe,
    FailureInjector,
    FederationCatalog,
    PlacementStrategy,
    place_fragments,
)
from repro.federation.availability import hardware_cost
from repro.sim import EventLoop, SimClock

SITES = [f"s{i}" for i in range(8)]
FRAGMENTS = 16
HORIZON = 20_000.0
MTTF, MTTR = 500.0, 100.0


def run_strategy(strategy: PlacementStrategy, replication: int = 2):
    placement = place_fragments(strategy, FRAGMENTS, SITES, replication)
    catalog = FederationCatalog(SimClock())
    for name in SITES:
        catalog.make_site(name)
    schema = Schema("content", (Field("k", DataType.STRING),))
    table = Table(schema, [(f"k{i}",) for i in range(FRAGMENTS * 10)])
    catalog.load_fragmented(table, FRAGMENTS, placement)

    loop = EventLoop(catalog.clock)
    probe = AvailabilityProbe(catalog)
    probe.attach_to(loop, interval=25.0)
    FailureInjector(
        loop, catalog, mttf=MTTF, mttr=MTTR, rng=random.Random(99)
    ).start()
    loop.run_until(HORIZON)
    return probe.mean_availability(), probe.full_availability_fraction(), hardware_cost(placement)


def test_e5_placement_strategies(benchmark):
    results = {}
    rows = []
    for label, strategy, rf in [
        ("central site", PlacementStrategy.CENTRAL, 1),
        ("fragmented (RF=1)", PlacementStrategy.FRAGMENTED, 1),
        ("hot standby (full copy x2)", PlacementStrategy.HOT_STANDBY, 2),
        ("fragment+replicate (RF=2)", PlacementStrategy.FRAGMENT_REPLICATE, 2),
        ("fragment+replicate (RF=3)", PlacementStrategy.FRAGMENT_REPLICATE, 3),
    ]:
        mean, full, hardware = run_strategy(strategy, rf)
        results[label] = (mean, full, hardware)
        rows.append([label, mean, full, hardware])

    report(
        "e5_availability",
        f"E5: availability under failures (MTTF {MTTF:.0f}s / MTTR {MTTR:.0f}s, "
        f"{HORIZON:.0f}s horizon)",
        ["placement", "mean availability", "all-content fraction", "hardware (replicas)"],
        rows,
    )

    central = results["central site"]
    fragmented = results["fragmented (RF=1)"]
    standby = results["hot standby (full copy x2)"]
    combo2 = results["fragment+replicate (RF=2)"]
    combo3 = results["fragment+replicate (RF=3)"]

    # "some of the content all of the time": fragmentation beats central on
    # mean availability at the same hardware cost.
    assert fragmented[0] > central[0]
    assert fragmented[2] == central[2] == FRAGMENTS
    # hot standby doubles hardware.
    assert standby[2] == 2 * FRAGMENTS
    # "most of the content all of the time": the combination dominates
    # fragmentation on both availability metrics at standby's hardware cost.
    assert combo2[0] > fragmented[0]
    assert combo2[1] > fragmented[1]
    assert combo2[2] == standby[2]
    # More replication keeps helping.
    assert combo3[0] >= combo2[0]

    benchmark(lambda: run_strategy(PlacementStrategy.FRAGMENT_REPLICATE, 2))

"""E3 -- Agoric vs centralized optimizer scalability (§3.2 C8).

Claim: "a federator must scale to hundreds, if not thousands, of sites ...
we see no way for compile-time, centralized cost-based optimizers to provide
required scalability or adaptivity."

Setup: an MRO catalog in 4 fragments with 3 replicas each, inside
federations of 4 to 512 sites.  Per query we measure the optimization
latency charged (bid round / statistics collection + enumeration) and how
many sites each optimizer had to talk to.

Expected shape: the agoric broker's work is O(replicas of the queried
fragments) -- flat in federation size -- while the centralized optimizer's
statistics collection grows linearly with the number of sites.

An ablation compares agoric greedy all-replica bidding against sampled
bidding (contact at most k replicas), the knob Mariposa brokers use.
"""

import random

from _bench_util import report
from repro.core import DataType, Field, Schema, Table
from repro.federation import (
    AgoricOptimizer,
    CentralizedOptimizer,
    FederatedEngine,
    FederationCatalog,
)
from repro.sim import SimClock
from repro.sql import build_plan, parse_sql

SITE_COUNTS = [4, 16, 64, 256, 512]
FRAGMENTS = 4
REPLICATION = 3


def build_catalog(site_count: int) -> FederationCatalog:
    catalog = FederationCatalog(SimClock())
    names = [f"s{i:03d}" for i in range(site_count)]
    for name in names:
        catalog.make_site(name)
    schema = Schema(
        "catalog",
        (Field("sku", DataType.STRING), Field("price", DataType.FLOAT)),
    )
    table = Table(schema, [(f"A-{i}", float(i)) for i in range(400)])
    placement = [
        [names[(i * 7 + r) % site_count] for r in range(REPLICATION)]
        for i in range(FRAGMENTS)
    ]
    catalog.load_fragmented(table, FRAGMENTS, placement)
    return catalog


def plan_for(catalog):
    statement = parse_sql("select sku from catalog where price > 100")
    fields = catalog.binding_fields({"catalog": "catalog"})
    return build_plan(statement, fields)


def test_e3_agoric_flat_centralized_linear(benchmark):
    rows = []
    agoric_costs = {}
    central_costs = {}
    for site_count in SITE_COUNTS:
        catalog = build_catalog(site_count)
        plan = plan_for(catalog)

        agoric = AgoricOptimizer(catalog)
        # stats_refresh_interval=0: every query pays for fresh statistics,
        # the centralized optimizer's honest per-query cost under volatility.
        central = CentralizedOptimizer(catalog, stats_refresh_interval=0.0)

        agoric_plan = agoric.optimize(plan_for(catalog))
        central_plan = central.optimize(plan)

        agoric_costs[site_count] = agoric_plan.optimization_seconds
        central_costs[site_count] = central_plan.optimization_seconds

        # Execute the same query once through the physical operator layer:
        # shipped rows stay flat in federation size (only the queried
        # replicas move data), another face of the O(replicas) claim.
        engine = FederatedEngine(catalog, optimizer=agoric)
        executed = engine.query(
            "select sku from catalog where price > 100", advance_clock=False
        )
        rows.append(
            [
                site_count,
                agoric_plan.optimization_seconds,
                agoric_plan.sites_contacted,
                central_plan.optimization_seconds,
                central_plan.sites_contacted,
                executed.report.rows_fetched,
                executed.report.rows_shipped,
            ]
        )

    report(
        "e3_optimizer_scaling",
        "E3: optimization cost vs federation size (4 fragments x 3 replicas)",
        ["sites", "agoric opt s", "agoric contacted", "central opt s",
         "central contacted", "rows fetched", "rows shipped"],
        rows,
    )

    # Paper shape: agoric contacts only the replicas (constant); centralized
    # must consult the whole federation (linear) and its per-query
    # optimization latency grows with it.
    first, last = SITE_COUNTS[0], SITE_COUNTS[-1]
    assert all(r[2] == FRAGMENTS * REPLICATION for r in rows)
    assert rows[-1][4] == last
    growth_central = central_costs[last] / central_costs[first]
    growth_agoric = agoric_costs[last] / agoric_costs[first]
    assert growth_central > 5.0
    assert growth_agoric < 3.0

    catalog = build_catalog(256)
    agoric = AgoricOptimizer(catalog)
    benchmark(lambda: agoric.optimize(plan_for(catalog)))


def test_e3_ablation_bid_sampling(benchmark):
    """Ablation: all-replica bidding vs contacting at most k replicas."""
    catalog = FederationCatalog(SimClock())
    names = [f"s{i:02d}" for i in range(32)]
    for name in names:
        catalog.make_site(name)
    schema = Schema("wide", (Field("sku", DataType.STRING),))
    table = Table(schema, [(f"A-{i}",) for i in range(320)])
    # One fragment replicated on every site: a worst case for full bidding.
    catalog.load_fragmented(table, 1, [names])

    def plan():
        statement = parse_sql("select sku from wide")
        return build_plan(statement, catalog.binding_fields({"wide": "wide"}))

    rows = []
    for sample in [None, 8, 3]:
        optimizer = AgoricOptimizer(catalog, sample_size=sample,
                                    rng=random.Random(5))
        physical = optimizer.optimize(plan())
        rows.append(
            [
                "all replicas" if sample is None else f"sample {sample}",
                physical.sites_contacted,
                physical.optimization_seconds,
                physical.total_price,
            ]
        )

    report(
        "e3_bid_sampling",
        "E3 ablation: bid sampling on a fully replicated fragment (32 sites)",
        ["bidding", "contacted", "opt seconds", "plan price"],
        rows,
    )
    assert rows[0][1] == 32
    assert rows[2][1] == 3
    # Sampling trades a little price optimality for contact cost.
    assert rows[2][3] >= rows[0][3]

    optimizer = AgoricOptimizer(catalog, sample_size=3, rng=random.Random(5))
    benchmark(lambda: optimizer.optimize(plan()))


def test_e3_ablation_zone_map_pruning(benchmark):
    """Ablation: partition elimination on a range-partitioned table.

    The same selective range query is run with zone maps on (pruning) and
    stripped (the pre-statistics behavior).  As the fragment count grows
    the pruned planner contacts a constant couple of sites and ships a
    constant trickle of rows, while the unpruned one pays per fragment.
    """
    fragment_counts = [2, 4, 8, 16]
    site_count = 8
    sql = "select sku from catalog where price >= 80 and price < 100"

    def build(fragments):
        catalog = FederationCatalog(SimClock())
        names = [f"s{i}" for i in range(site_count)]
        for name in names:
            catalog.make_site(name)
        schema = Schema(
            "catalog",
            (Field("sku", DataType.STRING), Field("price", DataType.FLOAT)),
        )
        table = Table(schema, [(f"A-{i}", float(i)) for i in range(400)])
        placement = [
            [names[i % site_count], names[(i + 1) % site_count]]
            for i in range(fragments)
        ]
        catalog.load_range_partitioned(table, "price", fragments, placement)
        return FederatedEngine(catalog, optimizer=AgoricOptimizer(catalog))

    rows = []
    for fragments in fragment_counts:
        pruned_engine = build(fragments)
        unpruned_engine = build(fragments)
        for fragment in unpruned_engine.catalog.entry("catalog").fragments:
            fragment.zone_map = None

        pruned = pruned_engine.query(sql, advance_clock=False)
        unpruned = unpruned_engine.query(sql, advance_clock=False)
        assert sorted(map(tuple, pruned.table.rows)) == sorted(
            map(tuple, unpruned.table.rows)
        )
        rows.append(
            [
                fragments,
                pruned.report.fragments_pruned,
                pruned.plan.sites_contacted,
                unpruned.plan.sites_contacted,
                pruned.report.rows_shipped,
                unpruned.report.rows_shipped,
                pruned.report.response_seconds,
                unpruned.report.response_seconds,
            ]
        )

    report(
        "e3_zone_map_pruning",
        "E3 ablation: partition elimination, selective range query "
        f"(20 of 400 rows, {site_count} sites)",
        ["fragments", "pruned", "contacted", "contacted (no zm)",
         "shipped", "shipped (no zm)", "latency s", "latency s (no zm)"],
        rows,
    )

    # Pruning keeps contact and shipping flat while the unpruned planner
    # pays per fragment; at 16 fragments both drop strictly.
    last = rows[-1]
    assert last[1] == 15  # 15 of 16 fragments eliminated
    assert last[2] < last[3]
    assert last[4] < last[5]
    assert last[6] < last[7]
    for prev, cur in zip(rows, rows[1:]):
        assert cur[3] >= prev[3]  # unpruned contact grows with fragments
    assert rows[-1][2] <= rows[0][2] + 2  # pruned contact stays ~flat

    engine = build(16)
    benchmark(lambda: engine.query(sql, advance_clock=False))

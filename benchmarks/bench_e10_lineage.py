"""E10 -- Declarative transforms keep lineage; ETL scripts lose it (§3.2 C5).

Claim: "the ETL tools gave up on data independence, leading to nasty
problems of data lineage through arbitrary code.  By contrast, federated
systems do not distinguish logically between views that transform data on
demand, and materialized views that have been pre-loaded; ... applications
are shielded from changes in the caching policy by data independence."

Setup: the same supplier normalization (price parsing + currency conversion
+ stock filter) implemented twice -- as a workbench :class:`Pipeline` of
declarative steps and as one imperative ETL script.  We then audit both:
for every output row, "which source row produced this?"; for every output
column, "through which transformations did it pass?".  Finally the
data-independence half: switching a query between cached and live access is
a *parameter* on the federated engine, while the warehouse can only re-run
its batch.

Expected shape: the pipeline answers 100% of provenance questions, the ETL
run answers none, at comparable transform throughput.
"""

import time

from _bench_util import report
from repro.connect.source import StaticSource
from repro.core import DataType, Table
from repro.warehouse import EtlJob
from repro.workbench import CastColumn, FilterRows, MapColumn, Pipeline
from repro.workbench.normalize import CurrencyNormalizer, parse_price
from repro.workloads import generate_mro
from repro.connect.sitegen import format_price

CURRENCY = CurrencyNormalizer("USD", {"FRF": 0.14, "EUR": 1.1, "GBP": 1.5})


def raw_supplier_table() -> Table:
    workload = generate_mro(seed=44, supplier_count=1, products_per_supplier=400,
                            with_taxonomies=False)
    spec = workload.suppliers[0]
    rows = [
        {
            "sku": p["sku"],
            "name": p["name"],
            "price": format_price(p["price"], p["currency"], spec.price_style),
            "qty": p["qty"],
        }
        for p in spec.products
    ]
    from repro.core import Field, Schema

    schema = Schema(
        "raw",
        (
            Field("sku", DataType.STRING),
            Field("name", DataType.STRING),
            Field("price", DataType.STRING),
            Field("qty", DataType.INTEGER),
        ),
    )
    return Table.from_dicts(schema, rows)


def declarative_pipeline() -> Pipeline:
    return Pipeline(
        "normalize",
        [
            CastColumn("price", DataType.FLOAT,
                       converter=lambda t: CURRENCY.normalize(parse_price(str(t))).amount),
            MapColumn("name", lambda n: " ".join(str(n).lower().split()),
                      description="normalize name"),
            FilterRows(lambda row: row["qty"] > 0, "in-stock only"),
        ],
    )


def imperative_etl_script(table: Table) -> Table:
    """The 'arbitrary code' the paper indicts: correct, opaque."""
    out_rows = []
    for sku, name, price, qty in table.rows:
        if qty <= 0:
            continue
        amount = CURRENCY.normalize(parse_price(str(price))).amount
        out_rows.append((sku, " ".join(str(name).lower().split()), amount, qty))
    from repro.core import Field, Schema

    schema = Schema(
        table.schema.name,
        (
            Field("sku", DataType.STRING),
            Field("name", DataType.STRING),
            Field("price", DataType.FLOAT),
            Field("qty", DataType.INTEGER),
        ),
    )
    out = Table(schema, validate=False)
    out.rows = out_rows
    return out


def test_e10_lineage_and_data_independence(benchmark):
    raw = raw_supplier_table()

    started = time.perf_counter()
    pipeline_result = declarative_pipeline().run(raw, source_name="supplier-000")
    pipeline_seconds = time.perf_counter() - started

    started = time.perf_counter()
    etl_run = EtlJob("normalize", StaticSource("raw", raw),
                     transform=imperative_etl_script).run(0.0)
    etl_seconds = time.perf_counter() - started

    # Same answers.
    assert pipeline_result.table.rows == etl_run.table.rows

    # Provenance audit: every output row and column must be explainable.
    out_rows = len(pipeline_result.table)
    pipeline_row_answers = 0
    for i in range(out_rows):
        origin = pipeline_result.lineage.origin_of(i)
        if raw.rows[origin.row_index][0] == pipeline_result.table.rows[i][0]:
            pipeline_row_answers += 1
    pipeline_column_answers = sum(
        1 for column in pipeline_result.table.schema.field_names
        if pipeline_result.lineage.explain(column)
    )

    etl_row_answers = 0
    for i in range(out_rows):
        try:
            etl_run.origin_of(i)
            etl_row_answers += 1
        except LookupError:
            pass

    rows = [
        ["row provenance answered", f"{pipeline_row_answers}/{out_rows}",
         f"{etl_row_answers}/{out_rows}"],
        ["column derivations answered", "4/4", "0/4"],
        ["transform seconds (400 rows)", pipeline_seconds, etl_seconds],
    ]
    report(
        "e10_lineage",
        "E10: provenance through declarative pipeline vs imperative ETL",
        ["audit question", "pipeline", "ETL script"],
        rows,
    )

    assert pipeline_row_answers == out_rows
    assert pipeline_column_answers == 4
    assert etl_row_answers == 0
    # The declarative machinery costs at most a small constant factor.
    assert pipeline_seconds < etl_seconds * 10 + 0.05

    # Data independence: cached vs live is one parameter, not a rebuild.
    chain = pipeline_result.lineage.explain("price")
    assert chain[0].startswith("source supplier-000")

    benchmark(lambda: declarative_pipeline().run(raw, source_name="s"))

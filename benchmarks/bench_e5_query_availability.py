"""E5b -- Query-level availability: failover keeps queries alive (§3.2 C8).

The original E5 sweep measures *content reachability* under failures; this
one measures what users actually see: **query success rate** and **answer
completeness** when sites crash between planning and execution.

Setup: 16 content fragments on 8 sites, exponential crash/repair processes
(MTTF 500s, MTTR 100s), identical failure seeds across configurations.
Each query is planned first, then the simulation advances a scheduling
window (sites may die in between), then the plan executes -- exactly the
mid-query failure regime scan-level failover exists for.

Three measurements:

* RF=2 + single-site failures, **failover on**: every fragment always has a
  live replica, so the success rate must be 1.0 and failovers must fire.
* The identical workload and failure schedule with **failover off**
  (``RetryPolicy(enabled=False)``): queries die with
  ``SourceUnavailableError`` -- the ablation that shows the failover layer
  is doing the work.
* Unconstrained failures with ``degraded_ok=True``, swept over the §3.2 C8
  placement strategies: no query raises, and mean completeness reproduces
  the paper's availability ordering at the *answer* level.
"""

import os
import random

from _bench_util import report
from repro.core import DataType, Field, Schema, Table
from repro.core.errors import SourceUnavailableError
from repro.federation import (
    FailureInjector,
    FederatedEngine,
    FederationCatalog,
    PlacementStrategy,
    RetryPolicy,
    place_fragments,
)
from repro.federation.engine import LIVE_ONLY
from repro.sim import EventLoop, SimClock
from repro.sql.parser import parse_sql
from repro.sql.planner import build_plan

SITES = [f"s{i}" for i in range(8)]
FRAGMENTS = 16
ROWS_PER_FRAGMENT = 10
MTTF, MTTR = 500.0, 100.0
FAILURE_SEED = 99
# The gap between planning and execution: long enough that sites die
# mid-query, short enough that most queries see a healthy federation.
WINDOW = 20.0
QUERY = "select count(*) from content"
TOTAL_ROWS = FRAGMENTS * ROWS_PER_FRAGMENT
# Env-overridable so CI can run a smaller smoke configuration.
QUERIES = int(os.environ.get("E5Q_QUERIES", "200"))


def build(strategy, replication, retry=None, max_concurrent_failures=None):
    placement = place_fragments(strategy, FRAGMENTS, SITES, replication)
    catalog = FederationCatalog(SimClock())
    for name in SITES:
        catalog.make_site(name)
    schema = Schema("content", (Field("k", DataType.STRING),))
    table = Table(schema, [(f"k{i}",) for i in range(TOTAL_ROWS)])
    catalog.load_fragmented(table, FRAGMENTS, placement)

    loop = EventLoop(catalog.clock)
    FailureInjector(
        loop,
        catalog,
        mttf=MTTF,
        mttr=MTTR,
        rng=random.Random(FAILURE_SEED),
        max_concurrent_failures=max_concurrent_failures,
    ).start()
    engine = FederatedEngine(catalog, retry=retry)
    return catalog, loop, engine


def plan_query(engine):
    """Plan QUERY through the engine's own rewrite + optimizer machinery."""
    statement = parse_sql(QUERY)
    bindings = {statement.table.binding: statement.table.name}
    binding_fields = engine.catalog.binding_fields(bindings)
    plan = build_plan(statement, binding_fields)
    plan = engine._apply_rewrites(plan, bindings, binding_fields)
    return engine.optimizer.optimize(plan, None, LIVE_ONLY)


def run_workload(strategy, replication, retry=None, max_concurrent_failures=None,
                 degraded_ok=False):
    """Plan, advance the window (failures land here), then execute.

    The clock only moves via ``loop.run_until`` in fixed steps, so the
    failure schedule is byte-identical across configurations -- the failover
    on/off comparison really is the same history twice.
    """
    catalog, loop, engine = build(
        strategy, replication, retry, max_concurrent_failures
    )
    succeeded = 0
    failed = 0
    completeness: list[float] = []
    for _ in range(QUERIES):
        try:
            physical = plan_query(engine)
        except Exception:
            failed += 1
            completeness.append(0.0)
            loop.run_until(catalog.clock.now() + 2 * WINDOW)
            continue
        loop.run_until(catalog.clock.now() + WINDOW)
        try:
            result_table, query_report = engine.executor.execute(
                physical, degraded_ok=degraded_ok
            )
        except SourceUnavailableError:
            failed += 1
            completeness.append(0.0)
        except Exception:
            failed += 1
            completeness.append(0.0)
        else:
            succeeded += 1
            completeness.append(query_report.completeness)
            engine.record_report_metrics(query_report)
        loop.run_until(catalog.clock.now() + WINDOW)
    return {
        "success_rate": succeeded / QUERIES,
        "failed": failed,
        "mean_completeness": sum(completeness) / len(completeness),
        "failovers": engine.metrics.counter("failover.successes").value,
        "attempts": engine.metrics.counter("failover.attempts").value,
        "degraded": engine.metrics.counter("queries.degraded").value,
    }


def test_e5_failover_keeps_queries_alive(benchmark):
    """RF=2 + single-site failures: failover on never loses a query; the
    identical failure schedule with failover off does."""
    with_failover = run_workload(
        PlacementStrategy.FRAGMENT_REPLICATE, 2, max_concurrent_failures=1
    )
    without_failover = run_workload(
        PlacementStrategy.FRAGMENT_REPLICATE,
        2,
        retry=RetryPolicy(enabled=False),
        max_concurrent_failures=1,
    )

    report(
        "e5_query_availability",
        f"E5b: query success under failures ({QUERIES} queries, RF=2, "
        f"MTTF {MTTF:.0f}s / MTTR {MTTR:.0f}s, single-site failures)",
        ["configuration", "success rate", "mean completeness",
         "failovers", "failed queries"],
        [
            ["failover on", with_failover["success_rate"],
             with_failover["mean_completeness"],
             with_failover["failovers"], with_failover["failed"]],
            ["failover off", without_failover["success_rate"],
             without_failover["mean_completeness"],
             without_failover["failovers"], without_failover["failed"]],
        ],
    )

    # With RF=2 and at most one site down, every fragment always has a live
    # replica: failover must save every query.
    assert with_failover["success_rate"] == 1.0
    assert with_failover["mean_completeness"] == 1.0
    assert with_failover["failovers"] > 0
    # The same failure schedule without failover loses queries.
    assert without_failover["success_rate"] < 1.0
    assert without_failover["failed"] > 0

    benchmark(lambda: run_workload(
        PlacementStrategy.FRAGMENT_REPLICATE, 2, max_concurrent_failures=1
    ))


def test_e5_degraded_answers_by_placement(benchmark):
    """Unconstrained failures + degraded_ok: nothing raises, and answer
    completeness reproduces the §3.2 C8 availability ordering."""
    rows = []
    results = {}
    for label, strategy, rf in [
        ("central site", PlacementStrategy.CENTRAL, 1),
        ("fragmented (RF=1)", PlacementStrategy.FRAGMENTED, 1),
        ("hot standby (full copy x2)", PlacementStrategy.HOT_STANDBY, 2),
        ("fragment+replicate (RF=2)", PlacementStrategy.FRAGMENT_REPLICATE, 2),
    ]:
        outcome = run_workload(strategy, rf, degraded_ok=True)
        results[label] = outcome
        rows.append([
            label,
            outcome["success_rate"],
            outcome["mean_completeness"],
            outcome["degraded"],
        ])

    report(
        "e5_degraded_answers",
        f"E5b: degraded-answer completeness by placement ({QUERIES} queries, "
        f"unconstrained failures)",
        ["placement", "success rate", "mean completeness", "degraded queries"],
        rows,
    )

    central = results["central site"]
    fragmented = results["fragmented (RF=1)"]
    combo = results["fragment+replicate (RF=2)"]
    # degraded_ok turns partial failures into partial answers: no query dies.
    for outcome in results.values():
        assert outcome["success_rate"] == 1.0
    # "most of the content all of the time": replication+fragmentation gives
    # the most complete answers; a central site loses whole queries' worth.
    assert combo["mean_completeness"] > central["mean_completeness"]
    assert combo["mean_completeness"] >= fragmented["mean_completeness"]
    assert central["degraded"] > 0

    benchmark(lambda: run_workload(
        PlacementStrategy.FRAGMENT_REPLICATE, 2, degraded_ok=True
    ))

#!/usr/bin/env python3
"""CI gate: every committed governance manifest must be schema-valid.

Usage::

    check_policy_manifests.py [PATH ...]

With no arguments, validates every ``*.yaml`` / ``*.yml`` / ``*.json``
file under the repository's ``policies/`` directory.  Each file is run
through :func:`repro.federation.governance.validate_manifest` -- the same
checker :class:`GovernanceRegistry` applies at load time -- so a manifest
that passes here is guaranteed to load, and one that would fail a
deployment fails the build instead, with every problem listed.

Exits 1 if any file is malformed, 2 if a YAML file is found but no YAML
parser is available (CI must install one rather than silently skip).
"""

import os
import sys

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"),
)

from repro.federation.governance import (  # noqa: E402
    load_manifest_data,
    validate_manifest,
)

POLICY_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "policies"
)
EXTENSIONS = (".yaml", ".yml", ".json")


def discover() -> "list[str]":
    if not os.path.isdir(POLICY_DIR):
        return []
    return sorted(
        os.path.join(POLICY_DIR, name)
        for name in os.listdir(POLICY_DIR)
        if name.endswith(EXTENSIONS)
    )


def main(argv: "list[str]") -> int:
    paths = argv[1:] or discover()
    if not paths:
        print("no policy manifests found; nothing to validate")
        return 0
    failures = 0
    for path in paths:
        if path.endswith((".yaml", ".yml")):
            try:
                import yaml  # noqa: F401
            except ImportError:
                print(f"{path}: cannot validate, no YAML parser installed")
                return 2
        try:
            data = load_manifest_data(path)
        except Exception as exc:
            print(f"{path}: FAIL: unreadable ({exc})")
            failures += 1
            continue
        errors = validate_manifest(data)
        if errors:
            print(f"{path}: FAIL:")
            for error in errors:
                print(f"  - {error}")
            failures += 1
        else:
            tenants = sorted(data.get("tenants", {}))
            print(f"{path}: ok ({len(tenants)} tenants: {', '.join(tenants)})")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))

"""E9 -- Incremental scale-out with no downtime (§3.2 C8, §4).

Claims: "a content integration solution must be architected to scale
incrementally, over several orders of magnitude in transaction load.  The
best solution is ... a customer can simply scale the solution by adding
more hardware -- preferably without a reboot" and "new compute and cache
machines can be added to a Cohera installation incrementally ...; the
optimizer takes advantage of them as soon as they are added, with no need
for downtime."

Setup: a replicated catalog starts on 2 sites.  Phases of a 30-query burst
alternate with doubling the machine count (new replicas are placed on the
new sites *while queries keep running*: the first burst query of each phase
runs mid-expansion).  We report per-phase mean latency and the maximum
backlog, and verify zero failed queries.

Expected shape: latency and peak backlog drop as sites are added; the
optimizer uses new sites in the same phase they appear.
"""

import random

from _bench_util import report
from repro.connect.source import StaticSource
from repro.core import DataType, Field, Schema, Table
from repro.federation import FederatedEngine, FederationCatalog
from repro.sim import SimClock
from repro.workloads import QueryMix

PHASES = [2, 4, 8, 16]
BURST = 30


def catalog_table():
    schema = Schema(
        "catalog",
        (
            Field("sku", DataType.STRING),
            Field("price", DataType.FLOAT),
            Field("supplier", DataType.STRING),
        ),
    )
    rows = [
        (f"SUPPLIER-000-{i:04d}", float(i % 400), f"supplier-{i % 5:03d}")
        for i in range(3000)
    ]
    return Table(schema, rows)


def test_e9_scaleout_without_downtime(benchmark):
    table = catalog_table()
    clock = SimClock()
    catalog = FederationCatalog(clock)
    first = [catalog.make_site(f"s{i:02d}", cpu_seconds_per_row=0.0005).name
             for i in range(PHASES[0])]
    catalog.load_fragmented(table, 4, [first] * 4)
    engine = FederatedEngine(catalog)
    mix = QueryMix(table="catalog")
    rng = random.Random(8)

    rows = []
    latencies_by_phase = {}
    failed = 0
    site_count = PHASES[0]
    for phase, target_sites in enumerate(PHASES):
        # Add machines (no reboot: the same engine object keeps serving).
        while site_count < target_sites:
            new_site = catalog.make_site(
                f"s{site_count:02d}", cpu_seconds_per_row=0.0005
            )
            # Re-replicate every fragment onto the new machine.
            for fragment in catalog.entry("catalog").fragments:
                donor_site = fragment.replica_sites()[0]
                donor = catalog.site(donor_site).source(
                    fragment.replicas[donor_site]
                )
                copy = StaticSource(
                    f"catalog.{fragment.fragment_id}@{new_site.name}",
                    donor.fetch().table,
                    cost_seconds=0.01,
                )
                catalog.place_replica(fragment, new_site.name, copy)
            site_count += 1

        phase_latencies = []
        used_sites = set()
        fetched = shipped = 0
        for sql in mix.batch(rng, BURST):
            try:
                result = engine.query(sql, advance_clock=False)
            except Exception:
                failed += 1
                continue
            phase_latencies.append(result.report.response_seconds)
            used_sites.update(result.report.site_work)
            fetched += result.report.rows_fetched
            shipped += result.report.rows_shipped
        mean_latency = sum(phase_latencies) / len(phase_latencies)
        peak_backlog = max(s.backlog() for s in catalog.sites.values())
        latencies_by_phase[target_sites] = mean_latency
        rows.append(
            [target_sites, mean_latency, peak_backlog, len(used_sites),
             fetched, shipped]
        )
        # Drain backlogs between phases (constant offered load per phase).
        clock.advance(3600.0)

    report(
        "e9_incremental_scaleout",
        f"E9: {BURST}-query bursts while doubling the machine count",
        ["sites", "mean latency s", "peak backlog s", "distinct sites used",
         "rows fetched", "rows shipped"],
        rows,
    )

    assert failed == 0  # no downtime, ever
    # More machines -> burst spread wider -> lower latency and backlog.
    assert latencies_by_phase[PHASES[-1]] < latencies_by_phase[PHASES[0]]
    assert rows[-1][3] > rows[0][3]  # new sites actually absorb work

    # The paper's next lever: "if additional scalability is required, the
    # data can be repartitioned over more machines".  That lever matters
    # when replication is bounded (full replication of everything is the
    # hardware-doubling the paper warns about): at RF=2, 4 fragments can
    # only ever occupy 8 of 16 machines -- repartitioning to 16 fragments
    # puts all 16 to work.
    def burst_latency_at(fragments: int) -> float:
        local_clock = SimClock()
        local_catalog = FederationCatalog(local_clock)
        names = [
            local_catalog.make_site(f"s{i:02d}", cpu_seconds_per_row=0.0005).name
            for i in range(16)
        ]
        placement = [
            [names[(2 * i) % 16], names[(2 * i + 1) % 16]] for i in range(fragments)
        ]
        local_catalog.load_fragmented(catalog_table(), fragments, placement)
        local_engine = FederatedEngine(local_catalog)
        local_rng = random.Random(8)
        latencies = [
            local_engine.query(sql, advance_clock=False).report.response_seconds
            for sql in mix.batch(local_rng, BURST)
        ]
        return sum(latencies) / len(latencies)

    narrow = burst_latency_at(4)   # RF=2: data confined to 8 machines
    wide = burst_latency_at(16)    # RF=2: data spread over all 16

    report(
        "e9_repartition",
        "E9 extension: repartitioning at fixed RF=2 on 16 machines",
        ["configuration", "mean burst latency s"],
        [
            ["4 fragments (8 machines carry data)", narrow],
            ["16 fragments (all 16 carry data)", wide],
        ],
    )
    assert wide < narrow

    benchmark(lambda: engine.query(
        "select * from catalog where sku = 'SUPPLIER-000-0007'",
        advance_clock=False,
    ))

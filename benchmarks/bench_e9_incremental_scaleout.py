"""E9 -- Incremental scale-out with no downtime (§3.2 C8, §4).

Claims: "a content integration solution must be architected to scale
incrementally, over several orders of magnitude in transaction load.  The
best solution is ... a customer can simply scale the solution by adding
more hardware -- preferably without a reboot" and "new compute and cache
machines can be added to a Cohera installation incrementally ...; the
optimizer takes advantage of them as soon as they are added, with no need
for downtime."

Setup: a replicated catalog starts on 2 sites.  Phases of a 30-query burst
alternate with doubling the machine count (new replicas are placed on the
new sites *while queries keep running*: the first burst query of each phase
runs mid-expansion).  We report per-phase mean latency and the maximum
backlog, and verify zero failed queries.

Expected shape: latency and peak backlog drop as sites are added; the
optimizer uses new sites in the same phase they appear.
"""

import random

from _bench_util import report
from repro.connect.source import StaticSource
from repro.core import DataType, Field, Schema, Table
from repro.federation import FederatedEngine, FederationCatalog
from repro.sim import SimClock
from repro.workloads import QueryMix

PHASES = [2, 4, 8, 16]
BURST = 30


def catalog_table():
    schema = Schema(
        "catalog",
        (
            Field("sku", DataType.STRING),
            Field("price", DataType.FLOAT),
            Field("supplier", DataType.STRING),
        ),
    )
    rows = [
        (f"SUPPLIER-000-{i:04d}", float(i % 400), f"supplier-{i % 5:03d}")
        for i in range(3000)
    ]
    return Table(schema, rows)


def test_e9_scaleout_without_downtime(benchmark):
    table = catalog_table()
    clock = SimClock()
    catalog = FederationCatalog(clock)
    first = [catalog.make_site(f"s{i:02d}", cpu_seconds_per_row=0.0005).name
             for i in range(PHASES[0])]
    catalog.load_fragmented(table, 4, [first] * 4)
    engine = FederatedEngine(catalog)
    mix = QueryMix(table="catalog")
    rng = random.Random(8)

    rows = []
    latencies_by_phase = {}
    failed = 0
    site_count = PHASES[0]
    for phase, target_sites in enumerate(PHASES):
        # Add machines (no reboot: the same engine object keeps serving).
        while site_count < target_sites:
            new_site = catalog.make_site(
                f"s{site_count:02d}", cpu_seconds_per_row=0.0005
            )
            # Re-replicate every fragment onto the new machine.
            for fragment in catalog.entry("catalog").fragments:
                donor_site = fragment.replica_sites()[0]
                donor = catalog.site(donor_site).source(
                    fragment.replicas[donor_site]
                )
                copy = StaticSource(
                    f"catalog.{fragment.fragment_id}@{new_site.name}",
                    donor.fetch().table,
                    cost_seconds=0.01,
                )
                catalog.place_replica(fragment, new_site.name, copy)
            site_count += 1

        phase_latencies = []
        used_sites = set()
        fetched = shipped = 0
        for sql in mix.batch(rng, BURST):
            try:
                result = engine.query(sql, advance_clock=False)
            except Exception:
                failed += 1
                continue
            phase_latencies.append(result.report.response_seconds)
            used_sites.update(result.report.site_work)
            fetched += result.report.rows_fetched
            shipped += result.report.rows_shipped
        mean_latency = sum(phase_latencies) / len(phase_latencies)
        peak_backlog = max(s.backlog() for s in catalog.sites.values())
        latencies_by_phase[target_sites] = mean_latency
        rows.append(
            [target_sites, mean_latency, peak_backlog, len(used_sites),
             fetched, shipped]
        )
        # Drain backlogs between phases (constant offered load per phase).
        clock.advance(3600.0)

    report(
        "e9_incremental_scaleout",
        f"E9: {BURST}-query bursts while doubling the machine count",
        ["sites", "mean latency s", "peak backlog s", "distinct sites used",
         "rows fetched", "rows shipped"],
        rows,
    )

    assert failed == 0  # no downtime, ever
    # More machines -> burst spread wider -> lower latency and backlog.
    assert latencies_by_phase[PHASES[-1]] < latencies_by_phase[PHASES[0]]
    assert rows[-1][3] > rows[0][3]  # new sites actually absorb work

    # The paper's next lever: "if additional scalability is required, the
    # data can be repartitioned over more machines".  That lever matters
    # when replication is bounded (full replication of everything is the
    # hardware-doubling the paper warns about): at RF=2, 4 fragments can
    # only ever occupy 8 of 16 machines -- repartitioning to 16 fragments
    # puts all 16 to work.
    def burst_latency_at(fragments: int) -> float:
        local_clock = SimClock()
        local_catalog = FederationCatalog(local_clock)
        names = [
            local_catalog.make_site(f"s{i:02d}", cpu_seconds_per_row=0.0005).name
            for i in range(16)
        ]
        placement = [
            [names[(2 * i) % 16], names[(2 * i + 1) % 16]] for i in range(fragments)
        ]
        local_catalog.load_fragmented(catalog_table(), fragments, placement)
        local_engine = FederatedEngine(local_catalog)
        local_rng = random.Random(8)
        latencies = [
            local_engine.query(sql, advance_clock=False).report.response_seconds
            for sql in mix.batch(local_rng, BURST)
        ]
        return sum(latencies) / len(latencies)

    narrow = burst_latency_at(4)   # RF=2: data confined to 8 machines
    wide = burst_latency_at(16)    # RF=2: data spread over all 16

    report(
        "e9_repartition",
        "E9 extension: repartitioning at fixed RF=2 on 16 machines",
        ["configuration", "mean burst latency s"],
        [
            ["4 fragments (8 machines carry data)", narrow],
            ["16 fragments (all 16 carry data)", wide],
        ],
    )
    assert wide < narrow

    benchmark(lambda: engine.query(
        "select * from catalog where sku = 'SUPPLIER-000-0007'",
        advance_clock=False,
    ))


def test_e9_ablation_range_partition_pruning(benchmark):
    """Ablation: repartitioning pays double when zone maps can prune.

    A supply-chain table is range-partitioned on ``eta_days`` over more and
    more fragments (RF=2 on 16 machines).  A selective range query -- the
    "what arrives this week" probe -- then touches a constant slice of the
    data: with zone maps the planner eliminates every other fragment, so
    latency and rows shipped *drop* as the partition count grows, while the
    statistics-free planner pays for every fragment it cannot rule out.
    """
    schema = Schema(
        "supply_chain",
        (
            Field("part", DataType.STRING),
            Field("on_hand", DataType.INTEGER),
            Field("eta_days", DataType.INTEGER),
        ),
    )
    data = Table(
        schema,
        [(f"P-{i:04d}", (i * 7) % 250, i % 1500) for i in range(3000)],
    )
    sql = "select part, on_hand from supply_chain where eta_days >= 400 and eta_days < 430"

    def run(fragments: int, with_zone_maps: bool):
        local_catalog = FederationCatalog(SimClock())
        names = [
            local_catalog.make_site(f"s{i:02d}", cpu_seconds_per_row=0.0005).name
            for i in range(16)
        ]
        placement = [
            [names[(2 * i) % 16], names[(2 * i + 1) % 16]]
            for i in range(fragments)
        ]
        local_catalog.load_range_partitioned(
            data, "eta_days", fragments, placement
        )
        if not with_zone_maps:
            for fragment in local_catalog.entry("supply_chain").fragments:
                fragment.zone_map = None
        local_engine = FederatedEngine(local_catalog)
        result = local_engine.query(sql, advance_clock=False)
        return result

    rows = []
    baseline_answer = None
    for fragments in [2, 4, 8, 16]:
        pruned = run(fragments, with_zone_maps=True)
        unpruned = run(fragments, with_zone_maps=False)
        answer = sorted(map(tuple, pruned.table.rows))
        assert answer == sorted(map(tuple, unpruned.table.rows))
        if baseline_answer is None:
            baseline_answer = answer
        assert answer == baseline_answer  # partition count never changes rows
        rows.append(
            [
                fragments,
                pruned.report.fragments_pruned,
                pruned.report.rows_shipped,
                unpruned.report.rows_shipped,
                pruned.report.response_seconds,
                unpruned.report.response_seconds,
            ]
        )

    report(
        "e9_range_partition_pruning",
        "E9 ablation: zone-map pruning on a range-partitioned supply chain "
        "(3000 rows, RF=2, 16 machines, 60-row range probe)",
        ["fragments", "pruned", "shipped", "shipped (no zm)",
         "latency s", "latency s (no zm)"],
        rows,
    )

    # The pruned plan beats the statistics-free one on both latency and
    # shipping at every partition count; finer partitioning widens the
    # gap on the unpruned side (it pays per fragment it cannot rule out)
    # while the pruned side stays flat.
    for r in rows:
        assert r[4] < r[5]  # latency: pruned < unpruned
        assert r[2] < r[3]  # shipped: pruned < unpruned
    unpruned_latencies = [r[5] for r in rows]
    pruned_latencies = [r[4] for r in rows]
    assert unpruned_latencies == sorted(unpruned_latencies)
    assert pruned_latencies[-1] <= pruned_latencies[0]
    assert rows[-1][1] >= 14  # at least 14 of 16 fragments eliminated

    benchmark(lambda: run(16, with_zone_maps=True))

"""E3c -- Vectorized columnar execution vs the row-at-a-time engine.

The federation's data plane moves *content*, and §3.2 C8's scalability
story dies if every row costs a dict allocation and an AST walk.  This
experiment measures the two wins the columnar refactor claims:

* **Throughput.**  The same scan+filter+aggregate query runs through the
  batch-at-a-time engine (selection-vector kernels, tight aggregate
  loops) and the legacy row engine over identical catalogs.  The
  acceptance bar is a >= ``E3C_MIN_SPEEDUP``x (default 5x) rows/sec win,
  with bit-identical answers.
* **Wire bytes.**  Shipping the hotel-market static table across sites
  with per-column encodings (prefix/dict/RLE/delta/bit-pack/scaled
  decimal) must cut the payload at least ``E3C_MIN_BYTES_RATIO``x
  (default 3x) against naive row serialization.

Wall-clock numbers (machine-dependent) go into ``BENCH_E3.json`` at the
repo root for the CI regression gate; the ``results/`` table carries only
modeled, deterministic quantities so the determinism double-run diff
stays byte-identical (DESIGN.md §7).
"""

import json
import os
import time

from _bench_util import REPO_ROOT, report, write_json
from repro.core import DataType, Field, Schema, Table
from repro.federation import FederatedEngine, FederationCatalog
from repro.sim import SimClock
from repro.workloads import generate_hotels

# Env-overridable so CI can run a smaller smoke configuration.
ROWS = int(os.environ.get("E3C_ROWS", "20000"))
REPEATS = int(os.environ.get("E3C_REPEATS", "5"))
MIN_SPEEDUP = float(os.environ.get("E3C_MIN_SPEEDUP", "5.0"))
MIN_BYTES_RATIO = float(os.environ.get("E3C_MIN_BYTES_RATIO", "3.0"))
SITES = 4
FRAGMENTS = 4
SUPPLIERS = 8

# Scan + disjunctive filter + grouped partial aggregation: the hot path
# the kernels vectorize end to end.
QUERY = (
    "select supplier, count(*) as n, sum(price) as total "
    "from parts where price >= 750.0 or supplier = 'sup-03' "
    "group by supplier order by supplier"
)


def build_engine(columnar: bool) -> FederatedEngine:
    catalog = FederationCatalog(SimClock())
    names = [catalog.make_site(f"s{i}").name for i in range(SITES)]
    schema = Schema(
        "parts",
        (
            Field("sku", DataType.STRING),
            Field("supplier", DataType.STRING),
            Field("price", DataType.FLOAT),
            Field("qty", DataType.INTEGER),
        ),
    )
    rows = [
        (
            f"part-{i:06d}",
            f"sup-{i % SUPPLIERS:02d}",
            float((i * 37) % 1000),
            i % 50,
        )
        for i in range(ROWS)
    ]
    table = Table(schema, rows, validate=False)
    placement = [
        [names[i % SITES], names[(i + 1) % SITES]] for i in range(FRAGMENTS)
    ]
    catalog.load_fragmented(table, FRAGMENTS, placement)
    return FederatedEngine(catalog, columnar=columnar)


def timed_runs(columnar: bool):
    """Wall-time REPEATS fresh-engine runs; returns (last result, samples)."""
    samples, result = [], None
    for _ in range(REPEATS):
        engine = build_engine(columnar)
        start = time.perf_counter()
        result = engine.query(QUERY, advance_clock=False)
        samples.append(time.perf_counter() - start)
    return result, samples


def percentile(values, q):
    ordered = sorted(values)
    rank = max(1, -(-q * len(ordered) // 100))  # nearest-rank, ceil
    return ordered[rank - 1]


def merge_bench_json(update: dict) -> None:
    """Fold a section into BENCH_E3.json (both tests contribute)."""
    path = os.path.join(REPO_ROOT, "BENCH_E3.json")
    payload = {}
    if os.path.exists(path):
        with open(path) as f:
            payload = json.load(f)
    payload.update(update)
    write_json("BENCH_E3", payload)


def test_e3c_columnar_throughput(benchmark):
    vec_result, vec_samples = timed_runs(columnar=True)
    row_result, row_samples = timed_runs(columnar=False)

    # Bit-identical answers, ordering included.
    assert [tuple(map(repr, r)) for r in vec_result.table.rows] == [
        tuple(map(repr, r)) for r in row_result.table.rows
    ]

    vec_best, row_best = min(vec_samples), min(row_samples)
    speedup = row_best / vec_best
    vec_rps, row_rps = ROWS / vec_best, ROWS / row_best

    # Deterministic (modeled) quantities only -- wall numbers go to JSON.
    report(
        "e3_columnar_engine",
        f"E3c: columnar vs row engine, scan+filter+aggregate "
        f"({ROWS} rows, {FRAGMENTS} fragments, {SITES} sites)",
        ["engine", "rows fetched", "rows shipped", "bytes shipped",
         "groups"],
        [
            ["columnar", vec_result.report.rows_fetched,
             vec_result.report.rows_shipped,
             vec_result.report.bytes_shipped, len(vec_result.table)],
            ["row", row_result.report.rows_fetched,
             row_result.report.rows_shipped,
             row_result.report.bytes_shipped, len(row_result.table)],
        ],
    )

    merge_bench_json(
        {
            "query": QUERY,
            "rows": ROWS,
            "repeats": REPEATS,
            "columnar": {
                "rows_per_sec": round(vec_rps, 1),
                "best_s": round(vec_best, 6),
                "p50_s": round(percentile(vec_samples, 50), 6),
                "p95_s": round(percentile(vec_samples, 95), 6),
                "p99_s": round(percentile(vec_samples, 99), 6),
                "bytes_shipped": vec_result.report.bytes_shipped,
            },
            "row": {
                "rows_per_sec": round(row_rps, 1),
                "best_s": round(row_best, 6),
                "p50_s": round(percentile(row_samples, 50), 6),
                "p95_s": round(percentile(row_samples, 95), 6),
                "p99_s": round(percentile(row_samples, 99), 6),
            },
            "speedup": round(speedup, 2),
        }
    )

    # Same plan-level accounting regardless of execution style.
    assert (
        vec_result.report.rows_shipped == row_result.report.rows_shipped
    )
    assert vec_result.report.bytes_shipped > 0
    # The acceptance bar: the batch engine is >= MIN_SPEEDUP x faster on
    # the scan/filter/aggregate hot path.
    assert speedup >= MIN_SPEEDUP, (
        f"columnar speedup {speedup:.2f}x below the {MIN_SPEEDUP}x bar "
        f"(columnar {vec_best:.4f}s vs row {row_best:.4f}s)"
    )

    engine = build_engine(columnar=True)
    benchmark(lambda: engine.query(QUERY, advance_clock=False))


def test_e3c_wire_bytes_on_hotels(benchmark):
    """Shipping the 1000-hotel static table: encoded vs naive bytes."""
    market = generate_hotels(seed=0, chain_count=50, hotels_per_chain=20)
    table = market.static_table()
    catalog = FederationCatalog(SimClock())
    names = [catalog.make_site(f"s{i}").name for i in range(4)]
    # One single-replica fragment per site: three of four fragments must
    # cross the wire to whichever site coordinates.
    catalog.load_fragmented(table, 4, [[names[i % 4]] for i in range(4)])
    engine = FederatedEngine(catalog)

    sql = (
        "select hotel_id, chain, name, miles_to_airport, has_health_club "
        "from hotel_static"
    )
    result = engine.query(sql, advance_clock=False)
    assert len(result.table) == len(table)

    ship = next(
        s for s in result.report.operators.walk() if s.name == "Ship"
    )
    ratio = ship.raw_bytes / ship.encoded_bytes
    encodings = {}
    from repro.federation.columnar import encode_column

    for field, column in zip(
        table.schema.fields, zip(*table.rows)
    ):
        encoded = encode_column(field.name, list(column))
        encodings[field.name] = {
            "encoding": encoded.encoding,
            "encoded_bytes": encoded.encoded_bytes,
            "raw_bytes": encoded.raw_bytes,
        }

    report(
        "e3_columnar_wire_bytes",
        f"E3c: hotel_static shipment, per-column encodings "
        f"({len(table)} rows, 4 fragments, 4 sites)",
        ["column", "encoding", "encoded B", "raw B", "ratio"],
        [
            [name, info["encoding"], info["encoded_bytes"],
             info["raw_bytes"],
             info["raw_bytes"] / info["encoded_bytes"]]
            for name, info in encodings.items()
        ]
        + [
            ["(shipped total)", "-", ship.encoded_bytes, ship.raw_bytes,
             ratio],
        ],
    )

    merge_bench_json(
        {
            "hotel_wire": {
                "rows": len(table),
                "bytes_shipped": result.report.bytes_shipped,
                "naive_bytes": ship.raw_bytes,
                "ratio": round(ratio, 2),
                "columns": encodings,
            }
        }
    )

    assert result.report.bytes_shipped == ship.encoded_bytes
    assert ratio >= MIN_BYTES_RATIO, (
        f"encoded shipment only {ratio:.2f}x under naive rows "
        f"(bar: {MIN_BYTES_RATIO}x)"
    )

    benchmark(lambda: engine.query(sql, advance_clock=False))

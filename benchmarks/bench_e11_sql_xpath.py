"""E11 -- Multiple standard query languages over the same content (§3.2 C6).

Claim: "we fully expect that a content integration solution must support
multiple standard query languages (e.g. SQL and XPath today ...) as well as
multiple output formats (e.g. SQL result sets and XML documents)."

Setup: the integrated MRO catalog published across four sites.  A set of
logically equivalent (SQL, XPath) query pairs runs against the same engine;
answers must agree exactly, and we measure the latency of each surface
(the XML path pays to materialize the XML view -- its documented overhead).
"""

import time

from _bench_util import report
from repro.core import Table
from repro.core.system import CATALOG_SCHEMA
from repro.federation import FederatedEngine, FederationCatalog
from repro.sim import SimClock
from repro.workloads import generate_mro


def build_engine():
    workload = generate_mro(seed=55, supplier_count=6, products_per_supplier=30,
                            with_taxonomies=False)
    rows = [
        {
            "sku": p["sku"], "name": p["name"], "price": round(p["price"], 2),
            "currency": p["currency"], "qty": p["qty"], "supplier": p["supplier"],
        }
        for p in workload.all_products()
    ]
    table = Table.from_dicts(CATALOG_SCHEMA, rows).extended("catalog")
    catalog = FederationCatalog(SimClock())
    names = [catalog.make_site(f"s{i}").name for i in range(4)]
    catalog.load_fragmented(table, 2, [[names[0], names[1]], [names[2], names[3]]])
    return FederatedEngine(catalog)


PAIRS = [
    (
        "supplier filter",
        "select sku from catalog where supplier = 'supplier-002'",
        "//row[supplier='supplier-002']/sku/text()",
    ),
    (
        "out of stock",
        "select sku from catalog where qty = 0",
        "//row[qty='0']/sku/text()",
    ),
    (
        "name contains ink",
        "select sku from catalog where name contains 'ink'",
        "//row[contains(name,'ink')]/sku/text()",
    ),
    (
        "currency tag",
        "select sku from catalog where currency = 'FRF'",
        "//row[currency='FRF']/sku/text()",
    ),
]


def test_e11_sql_and_xpath_agree(benchmark):
    engine = build_engine()
    rows = []
    for label, sql, path in PAIRS:
        started = time.perf_counter()
        sql_answer = sorted(engine.query(sql, advance_clock=False).table.column("sku"))
        sql_seconds = time.perf_counter() - started

        started = time.perf_counter()
        xpath_answer = sorted(engine.xpath_query("catalog", path))
        xpath_seconds = time.perf_counter() - started

        assert sql_answer == xpath_answer, label
        rows.append([label, len(sql_answer), sql_seconds * 1000,
                     xpath_seconds * 1000])

    report(
        "e11_sql_xpath",
        "E11: SQL vs XPath over the same integrated catalog (answers equal)",
        ["query", "answer rows", "SQL ms (wall)", "XPath ms (wall)"],
        rows,
    )
    assert all(row[1] >= 0 for row in rows)

    benchmark(lambda: engine.xpath_query(
        "catalog", "//row[supplier='supplier-002']/sku/text()"
    ))


def test_e11_xquery_tomorrow(benchmark):
    """The paper's "SQL and XQuery tomorrow": FLWOR over the same catalog."""
    engine = build_engine()
    sql_answer = sorted(
        engine.query(
            "select sku from catalog where qty > 100 and supplier = 'supplier-001' "
            "order by sku",
            advance_clock=False,
        ).table.column("sku")
    )
    flwor = (
        "for $p in //row "
        "where $p/qty > 100 and $p/supplier = 'supplier-001' "
        "order by $p/sku "
        "return <hit>{$p/sku/text()}</hit>"
    )
    xquery_answer = sorted(e.text for e in engine.xquery("catalog", flwor))
    assert sql_answer == xquery_answer

    report(
        "e11_xquery",
        "E11 extension: SQL vs XQuery (FLWOR) answer agreement",
        ["surface", "answer rows"],
        [["SQL", len(sql_answer)], ["XQuery FLWOR", len(xquery_answer)]],
    )
    benchmark(lambda: engine.xquery("catalog", flwor))


def test_e11_xml_output_format(benchmark):
    """The 'multiple output formats' half: XML documents out of SQL content."""
    from repro.xmlkit import parse_xml

    engine = build_engine()
    document = engine.xml_view("catalog")
    # Well-formed, round-trippable XML with one element per row.
    reparsed = parse_xml(document.to_string())
    assert len(reparsed.child_elements("row")) == 180
    first = reparsed.child_elements("row")[0]
    assert first.first("sku") is not None
    assert first.first("price") is not None

    benchmark(lambda: engine.xml_view("catalog").to_string())

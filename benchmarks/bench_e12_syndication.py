"""E12 -- Custom syndication: buyer-dependent content, rule-driven (§3.1 C4).

Claims: "many sellers have pricing schemes that are buyer-dependent ...
in some cases seats are 'made available' to top-tier customers even when
there are no seats left ... both pricing and availability can be
functionally specified by business rules", plus the sender-makes-right /
receiver-makes-right formatting split.

Setup: the integrated MRO catalog syndicated to three buyer tiers under a
rule set (tier discounts composing with a category surcharge, and the
"bumping" availability rule), in three output formats including a
legislated XML contract.  We verify the per-buyer differences are exactly
the rules' work and measure syndication throughput per format.
"""

import time

from _bench_util import report
from repro.core import Table
from repro.core.system import CATALOG_SCHEMA
from repro.core.schema import DataType, Field
from repro.workbench.syndication import (
    AvailabilityRule,
    LegislatedFormat,
    PricingRule,
    Recipient,
    Syndicator,
)
from repro.workloads import generate_mro
from repro.xmlkit import parse_xml

ROWS = 600


def build_catalog() -> Table:
    workload = generate_mro(seed=66, supplier_count=15, products_per_supplier=40,
                            with_taxonomies=False)
    schema = CATALOG_SCHEMA.extend(
        [Field("reserve_qty", DataType.INTEGER)], new_name="catalog"
    )
    rows = []
    for i, p in enumerate(workload.all_products()):
        rows.append(
            {
                "sku": p["sku"], "name": p["name"], "price": round(p["price"], 2),
                "currency": "USD", "qty": 0 if i % 7 == 0 else p["qty"],
                "supplier": p["supplier"], "reserve_qty": 3 if i % 7 == 0 else 0,
            }
        )
    return Table.from_dicts(schema, rows)


def build_syndicator() -> Syndicator:
    return Syndicator(
        pricing_rules=[
            PricingRule(
                "ink-surcharge",
                applies=lambda r, row: "ink" in (row.get("name") or ""),
                adjust=lambda price, row: price * 1.05,
                priority=50,
            ),
            PricingRule.tier_discount("preferred", 10.0),
            PricingRule.tier_discount("platinum", 20.0),
        ],
        availability_rules=[AvailabilityRule.bump_for_tier("platinum")],
        exchange_rates={"USD": 1.0, "EUR": 1.1},
    )


def test_e12_rules_personalize_content(benchmark):
    catalog = build_catalog()
    syndicator = build_syndicator()

    standard = syndicator.syndicate(catalog, Recipient("shop", tier="standard"))
    preferred = syndicator.syndicate(catalog, Recipient("corp", tier="preferred"))
    platinum = syndicator.syndicate(catalog, Recipient("whale", tier="platinum"))

    standard_prices = standard.table.column("price")
    preferred_prices = preferred.table.column("price")
    platinum_prices = platinum.table.column("price")

    # Tier pricing: strictly ordered, exactly the configured factors.
    assert all(
        abs(p - s * 0.9) < 1e-3 for p, s in zip(preferred_prices, standard_prices)
    )
    assert all(
        abs(p - s * 0.8) < 1e-3 for p, s in zip(platinum_prices, standard_prices)
    )

    # Bumping: sold-out items reappear for platinum from the reserve.
    sold_out = [i for i, q in enumerate(standard.table.column("qty")) if q == 0]
    bumped = [i for i in sold_out if platinum.table.column("qty")[i] > 0]
    assert len(bumped) == len(sold_out) > 0

    # Surcharge hits ink products for everyone (composed before discounts).
    ink_index = next(
        i for i, name in enumerate(catalog.column("name")) if "ink" in (name or "")
    )
    assert standard_prices[ink_index] > catalog.column("price")[ink_index]

    rows = [
        ["standard buyer", "list price +5% ink surcharge", 0],
        ["preferred buyer", "10% off everything", len(sold_out) - len(bumped)],
        ["platinum buyer", "20% off + reserve bumping", len(bumped)],
    ]
    report(
        "e12_rules",
        f"E12: buyer-dependent syndication over {len(catalog)} products "
        f"({len(sold_out)} sold out)",
        ["recipient", "pricing applied", "items bumped back"],
        rows,
    )
    benchmark(lambda: syndicator.syndicate(catalog, Recipient("whale", tier="platinum")))


def test_e12_output_formats_and_throughput(benchmark):
    catalog = build_catalog()
    syndicator = build_syndicator()

    contract = LegislatedFormat(
        root_tag="mkt:catalog",
        row_tag="mkt:product",
        field_map={"mkt:id": "sku", "mkt:desc": "name",
                   "mkt:unitPrice": "price", "mkt:stock": "qty"},
    )
    recipients = [
        Recipient("rows-buyer", output_format="rows"),
        Recipient("csv-buyer", output_format="csv"),
        Recipient("xml-buyer", output_format="xml"),
        Recipient("market", output_format="xml", legislated=contract),
    ]

    rows = []
    for recipient in recipients:
        started = time.perf_counter()
        result = syndicator.syndicate(catalog, recipient)
        elapsed = time.perf_counter() - started
        label = recipient.name
        if recipient.legislated:
            # Sender-makes-right: the payload satisfies the market's contract.
            reparsed = parse_xml(result.payload.to_string())
            products = reparsed.child_elements("mkt:product")
            assert len(products) == len(catalog)
            assert products[0].first("mkt:unitPrice") is not None
            label += " (legislated)"
        rows.append([label, recipient.output_format,
                     len(catalog) / elapsed if elapsed else float("inf")])

    report(
        "e12_formats",
        f"E12: output formats over {len(catalog)} products",
        ["recipient", "format", "rows/second"],
        rows,
    )
    assert all(row[2] > 1000 for row in rows)

    market = recipients[-1]
    benchmark(lambda: syndicator.syndicate(catalog, market))

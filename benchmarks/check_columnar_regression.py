#!/usr/bin/env python3
"""CI gate: the columnar engine's throughput win must not regress.

Usage::

    check_columnar_regression.py BASELINE.json FRESH.json [FRESH2.json ...]

Each file is a ``BENCH_E3.json`` produced by ``bench_e3_columnar.py``.
The gate compares the *speedup* (columnar rows/sec over row-engine
rows/sec measured in the same run on the same machine), not absolute
rows/sec -- CI runners are slower and noisier than the machine that
committed the baseline, but the ratio between the two engines transports.
Multiple fresh files may be passed (CI runs the micro-bench twice); the
best one counts, which absorbs warm-up and scheduling noise.

Fails (exit 1) when the best fresh speedup drops below ``FLOOR`` times
the committed baseline's speedup -- i.e. the columnar engine lost more
than 30% of its relative throughput advantage.
"""

import json
import sys

FLOOR = 0.7


def speedup(path: str) -> float:
    with open(path) as f:
        payload = json.load(f)
    if "speedup" not in payload:
        raise SystemExit(f"{path}: no 'speedup' key (throughput bench not run?)")
    return float(payload["speedup"])


def main(argv: list[str]) -> int:
    if len(argv) < 3:
        print(__doc__)
        return 2
    baseline = speedup(argv[1])
    fresh_runs = [speedup(path) for path in argv[2:]]
    best = max(fresh_runs)
    bar = FLOOR * baseline
    print(
        f"baseline speedup {baseline:.2f}x; fresh runs "
        f"{', '.join(f'{s:.2f}x' for s in fresh_runs)}; "
        f"bar {bar:.2f}x ({FLOOR:.0%} of baseline)"
    )
    if best < bar:
        print(
            f"FAIL: best fresh speedup {best:.2f}x regressed more than "
            f"{1 - FLOOR:.0%} below the committed {baseline:.2f}x"
        )
        return 1
    print(f"OK: best fresh speedup {best:.2f}x holds the bar")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))

#!/usr/bin/env python3
"""CI gate: the gateway's SLOs must not regress against the committed run.

Usage::

    check_gateway_slo.py BASELINE.json FRESH.json

Each file is a ``BENCH_E14.json`` produced by ``bench_e14_gateway.py``.
The fresh file typically comes from a smoke run (``E14_QUERIES`` scaled
far down), so the gate compares *shapes*, not exact numbers:

* **Shed + timeout rate** per tenant may exceed the baseline's by at most
  ``RATE_SLACK`` (absolute) -- admission behaviour is modeled time and
  nearly scale-free, so a jump means the gateway or workload manager
  changed behaviour, not the runner.
* **P99 latency** per tenant (modeled seconds) may rise to at most
  ``P99_CEILING`` times the baseline's P99 -- smoke runs have fewer
  samples in the tail, so the ceiling is generous, but a deterministic
  queueing regression blows well past 3x.
* **Plan-cache hit rate** may drop at most ``HIT_RATE_SLACK`` below the
  baseline.  Misses are one-per-SQL-shape, so the smoke run's hit rate is
  a little lower than the full run's; a cache keying bug sends it toward
  zero.
* **Error rate** must be exactly zero, at any scale.
* **Wall-clock prepared-statement speedup** must stay above
  ``MIN_SPEEDUP`` -- absolute wall numbers do not transport across
  runners, but prepare-once/execute-many beating parse-per-statement by a
  healthy margin does.

Exits 1 on the first violated bound.
"""

import json
import sys

RATE_SLACK = 0.05  # absolute shed+timeout headroom per tenant
P99_CEILING = 3.0  # fresh p99 may be at most this multiple of baseline
HIT_RATE_SLACK = 0.02
MIN_SPEEDUP = 1.1  # wall-clock prepared vs parse-per-statement


def load(path: str) -> dict:
    with open(path) as f:
        payload = json.load(f)
    for key in ("tenants", "plan_cache", "planning"):
        if key not in payload:
            raise SystemExit(f"{path}: no '{key}' key (full E14 bench not run?)")
    return payload


def main(argv: "list[str]") -> int:
    if len(argv) != 3:
        print(__doc__)
        return 2
    baseline = load(argv[1])
    fresh = load(argv[2])
    failures = []

    for tenant, base_stats in sorted(baseline["tenants"].items()):
        stats = fresh["tenants"].get(tenant)
        if stats is None:
            failures.append(f"{tenant}: missing from fresh run")
            continue
        base_rate = base_stats["shed_rate"] + base_stats["timeout_rate"]
        rate = stats["shed_rate"] + stats["timeout_rate"]
        if rate > base_rate + RATE_SLACK:
            failures.append(
                f"{tenant}: shed+timeout rate {rate:.4f} exceeds baseline "
                f"{base_rate:.4f} + {RATE_SLACK}"
            )
        ceiling = P99_CEILING * base_stats["p99_s"]
        if stats["p99_s"] > ceiling:
            failures.append(
                f"{tenant}: p99 {stats['p99_s']:.4f}s exceeds "
                f"{P99_CEILING}x baseline ({ceiling:.4f}s)"
            )
        if stats["error_rate"] != 0:
            failures.append(f"{tenant}: nonzero error rate {stats['error_rate']}")
        print(
            f"{tenant}: shed+timeout {rate:.4f} (bar {base_rate + RATE_SLACK:.4f}), "
            f"p99 {stats['p99_s']:.4f}s (bar {ceiling:.4f}s)"
        )

    hit_bar = baseline["plan_cache"]["hit_rate"] - HIT_RATE_SLACK
    hit_rate = fresh["plan_cache"]["hit_rate"]
    print(f"plan-cache hit rate {hit_rate:.4f} (bar {hit_bar:.4f})")
    if hit_rate < hit_bar:
        failures.append(
            f"plan-cache hit rate {hit_rate:.4f} below baseline "
            f"{baseline['plan_cache']['hit_rate']:.4f} - {HIT_RATE_SLACK}"
        )

    speedup = fresh["planning"]["wall_speedup"]
    print(f"prepared-statement wall speedup {speedup:.2f}x (bar {MIN_SPEEDUP}x)")
    if speedup < MIN_SPEEDUP:
        failures.append(
            f"prepared wall speedup {speedup:.2f}x below {MIN_SPEEDUP}x"
        )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("OK: gateway SLOs hold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))

#!/usr/bin/env python3
"""CI gate: compiled governance must not regress against the committed run.

Usage::

    check_governance.py BASELINE.json FRESH.json

Each file is a ``BENCH_E17.json`` produced by ``bench_e17_governance.py``.
The fresh file typically comes from a smoke run (``E17_QUERIES`` scaled
far down), so the gate compares *shapes*, not exact numbers:

* **Enforcement overhead** (governed / ungoverned modeled mean latency)
  may exceed the baseline's ratio by at most ``OVERHEAD_SLACK``
  (absolute).  RLS rides the pushdown the sites evaluate anyway, so the
  committed ratio is ~1.0; a post-filtering regression ships every row
  and blows past the bar.
* **Policing coverage**: the governed run must have policed at least one
  statement, with an error rate of exactly zero at any scale.
* **Plan-cache hit rate** may drop at most ``HIT_RATE_SLACK`` below the
  baseline -- policy signatures multiply cache entries per shape, but a
  keying bug (e.g. keying on tenant *name*) sends the rate toward zero.
* **Optimizer pricing**: for every optimizer family the governed probe
  must cost less modeled time than the unrestricted one, and the agoric
  market's winning-bid total must drop too -- the policy is in the plan,
  not the cursor.
* **Budget/rate admission**: the funded tenant is never rejected, the
  ``reject`` tenant is, the ``degrade`` tenant never is, and the token
  bucket clipped the chatty burst.

Exits 1 on the first violated bound.
"""

import json
import sys

OVERHEAD_SLACK = 0.25  # absolute headroom over the baseline overhead ratio
HIT_RATE_SLACK = 0.02


def load(path: str) -> dict:
    with open(path) as f:
        payload = json.load(f)
    for key in ("enforcement", "pricing", "budgets"):
        if key not in payload:
            raise SystemExit(
                f"{path}: no '{key}' key (full E17 bench not run?)"
            )
    return payload


def main(argv: "list[str]") -> int:
    if len(argv) != 3:
        print(__doc__)
        return 2
    baseline = load(argv[1])
    fresh = load(argv[2])
    failures = []

    base_enf = baseline["enforcement"]
    enf = fresh["enforcement"]
    bar = base_enf["overhead_ratio"] + OVERHEAD_SLACK
    print(f"enforcement overhead {enf['overhead_ratio']:.4f}x (bar {bar:.4f}x)")
    if enf["overhead_ratio"] > bar:
        failures.append(
            f"enforcement overhead {enf['overhead_ratio']:.4f} exceeds "
            f"baseline {base_enf['overhead_ratio']:.4f} + {OVERHEAD_SLACK}"
        )
    if enf["error_rate"] != 0:
        failures.append(f"nonzero governed error rate {enf['error_rate']}")
    if enf["queries_policed"] <= 0:
        failures.append("no statements were policed")
    hit_bar = base_enf["plan_cache_hit_rate"] - HIT_RATE_SLACK
    print(
        f"plan-cache hit rate {enf['plan_cache_hit_rate']:.4f} "
        f"(bar {hit_bar:.4f})"
    )
    if enf["plan_cache_hit_rate"] < hit_bar:
        failures.append(
            f"plan-cache hit rate {enf['plan_cache_hit_rate']:.4f} below "
            f"baseline {base_enf['plan_cache_hit_rate']:.4f} - {HIT_RATE_SLACK}"
        )

    for name, stats in sorted(fresh["pricing"].items()):
        print(
            f"{name}: governed {stats['governed_seconds']:.6f}s vs "
            f"plain {stats['plain_seconds']:.6f}s"
        )
        if stats["governed_seconds"] >= stats["plain_seconds"]:
            failures.append(
                f"{name}: governed probe not cheaper than unrestricted "
                f"({stats['governed_seconds']} >= {stats['plain_seconds']})"
            )
    agoric = fresh["pricing"].get("agoric")
    if agoric and agoric["governed_price"] >= agoric["plain_price"]:
        failures.append(
            f"agoric winning-bid total did not drop under RLS "
            f"({agoric['governed_price']} >= {agoric['plain_price']})"
        )

    budgets = fresh["budgets"]
    print(
        f"budgets: {budgets['budget_rejections']} rejections, "
        f"{budgets['budget_degraded']} degraded, "
        f"{budgets['rate_limited']} rate-limited"
    )
    if budgets["rejected"]["rich"] != 0:
        failures.append("funded tenant was rejected")
    if budgets["budget_rejections"] <= 0:
        failures.append("exhausted reject-mode tenant was never rejected")
    if budgets["rejected"]["poor-degrade"] != 0:
        failures.append("degrade-mode tenant was rejected instead of degraded")
    if budgets["budget_degraded"] <= 0:
        failures.append("exhausted degrade-mode tenant never degraded")
    if budgets["rate_limited"] <= 0:
        failures.append("token bucket never clipped the chatty burst")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("OK: governance behaviour holds")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))

"""E6 -- Synonym and fuzzy search are required (§3.2 C7).

Claims: "a query for 'India ink' should return the same answer as one for
'black ink' ... a user should be able to ask for 'ink, black', 'black India
ink', 'inkpen refills', or 'ink'.  A query for 'cordless drills' should
fetch similar records to one for 'drlls: crdlss' ... Avoid any content
integration solution that does not support both synonym search and fuzzy
search."

Setup: the MRO catalog (10 suppliers x 40 messy product names) indexed by
the integrator.  The query set is generated from canonical product names
through the same corruption channels suppliers use (synonyms, word
reordering, vowel dropping, typos) *plus* clean canonical queries.  A hit
is correct when it is a product whose canonical name matches the query's
ground truth.  We report recall@10 per search mode.

Expected shape: EXACT < SYNONYM, EXACT < FUZZY, and FULL dominates --
each expansion recovers the query class it was built for.

The matcher ablation (DESIGN.md §6) scores edit-distance-only vs
n-gram-only vs the combined similarity on corrupted-name ranking.
"""

import random

from _bench_util import report
from repro.ir import CatalogSearch, InvertedIndex, SearchMode
from repro.ir.fuzzy import levenshtein_similarity, ngram_jaccard, combined_similarity
from repro.workloads import generate_mro
from repro.workloads.mro import BASE_PRODUCTS, corrupt_name

K = 10
QUERIES_PER_KIND = 60


def build_search():
    workload = generate_mro(seed=21, supplier_count=10, products_per_supplier=40,
                            with_taxonomies=True)
    index = InvertedIndex()
    truth_by_canonical: dict[str, set[str]] = {}
    for product in workload.all_products():
        index.add(product["sku"], product["name"])
        truth_by_canonical.setdefault(product["canonical_name"], set()).add(
            product["sku"]
        )
    search = CatalogSearch(
        index,
        synonyms=workload.synonyms,
        taxonomy_expander=workload.master_taxonomy.expand_query,
    )
    return search, truth_by_canonical


def make_queries(rng: random.Random):
    """(query text, canonical ground truth) pairs across corruption kinds."""
    queries = []
    for _ in range(QUERIES_PER_KIND):
        canonical, _, synonyms = rng.choice(BASE_PRODUCTS)
        queries.append(("clean", canonical, canonical))
        if synonyms:
            queries.append(("synonym", rng.choice(synonyms), canonical))
        tokens = canonical.split()
        rng.shuffle(tokens)
        queries.append(("reorder", ", ".join(tokens), canonical))
        queries.append((
            "vowel-drop",
            " ".join("".join(c for c in t if c not in "aeiou") or t
                     for t in canonical.split()),
            canonical,
        ))
        queries.append(("messy", corrupt_name(rng, canonical, synonyms), canonical))
    return queries


def recall_at_k(search, truth_by_canonical, queries, mode) -> float:
    scores = []
    for _, text, canonical in queries:
        relevant = truth_by_canonical.get(canonical, set())
        if not relevant:
            continue
        hits = {h.doc_id for h in search.search(text, mode=mode, limit=K)}
        scores.append(len(hits & relevant) / min(len(relevant), K))
    return sum(scores) / len(scores)


def test_e6_search_modes(benchmark):
    search, truth = build_search()
    rng = random.Random(4)
    queries = make_queries(rng)

    rows = []
    recalls = {}
    for mode in [SearchMode.EXACT, SearchMode.SYNONYM, SearchMode.FUZZY, SearchMode.FULL]:
        overall = recall_at_k(search, truth, queries, mode)
        by_kind = {}
        for kind in ["clean", "synonym", "reorder", "vowel-drop", "messy"]:
            subset = [q for q in queries if q[0] == kind]
            by_kind[kind] = recall_at_k(search, truth, subset, mode)
        recalls[mode] = (overall, by_kind)
        rows.append([
            mode.value, overall, by_kind["clean"], by_kind["synonym"],
            by_kind["reorder"], by_kind["vowel-drop"], by_kind["messy"],
        ])

    report(
        "e6_fuzzy_search",
        f"E6: recall@{K} by search mode and query corruption "
        f"(400 products, {len(make_queries(random.Random(4)))} queries)",
        ["mode", "overall", "clean", "synonym", "reorder", "vowel-drop", "messy"],
        rows,
    )

    exact_overall = recalls[SearchMode.EXACT][0]
    full_overall = recalls[SearchMode.FULL][0]
    # Paper shape: each expansion recovers its query class; FULL dominates.
    assert recalls[SearchMode.SYNONYM][1]["synonym"] > recalls[SearchMode.EXACT][1]["synonym"]
    assert recalls[SearchMode.FUZZY][1]["vowel-drop"] > recalls[SearchMode.EXACT][1]["vowel-drop"]
    assert full_overall > exact_overall
    assert full_overall >= 0.8
    # Word order must be free even in EXACT mode (bag-of-words index).
    assert recalls[SearchMode.EXACT][1]["reorder"] >= 0.9

    benchmark(lambda: search.search("drlls: crdlss", mode=SearchMode.FULL, limit=K))


def test_e6_ablation_similarity_signals(benchmark):
    """Ablation: which fuzzy signal ranks corrupted names best?"""
    rng = random.Random(17)
    candidates = [name for name, _, _ in BASE_PRODUCTS]
    trials = []
    for _ in range(150):
        canonical, _, _synonyms = rng.choice(BASE_PRODUCTS)
        # Lexical corruptions only: synonym substitutions ("dolly" for "hand
        # truck") are unrecoverable by string similarity by construction --
        # that failure mode belongs to the synonym table, measured above.
        trials.append((corrupt_name(rng, canonical, []), canonical))

    def top1_accuracy(score_fn) -> float:
        correct = 0
        for query, truth in trials:
            best = max(candidates, key=lambda c: (score_fn(query, c), c))
            correct += best == truth
        return correct / len(trials)

    rows = [
        ["edit distance only", top1_accuracy(levenshtein_similarity)],
        ["ngram jaccard only", top1_accuracy(ngram_jaccard)],
        ["combined (+skeleton)", top1_accuracy(combined_similarity)],
    ]
    report(
        "e6_similarity_ablation",
        "E6 ablation: top-1 canonical-name recovery from corrupted names",
        ["similarity signal", "top-1 accuracy"],
        rows,
    )
    assert rows[2][1] >= rows[0][1]
    assert rows[2][1] >= rows[1][1]
    assert rows[2][1] > 0.85

    query, _ = trials[0]
    benchmark(lambda: max(candidates, key=lambda c: combined_similarity(query, c)))

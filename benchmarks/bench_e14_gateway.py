"""E14 -- The query gateway under production-shaped load.

§4 puts a portal in front of the integrator ("Cohera Connect can present
a traditional ODBC or JDBC interface to query applications") serving many
trading partners.  This experiment drives the gateway -- pooled sessions,
prepared-statement plan cache, workload-manager admission -- with the
traffic shapes such a front door actually sees:

* **Steady state.**  Open-loop Poisson arrivals at 85% of federation
  capacity, Zipf-skewed across six tenants, with a per-statement
  deadline.  The SLO report is per-tenant: QPS, P50/P95/P99 latency,
  shed / timeout / error rates, plus the plan-cache hit rate (three SQL
  shapes repeat with fresh bindings, so the cache should absorb nearly
  all planning).
* **Diurnal curve and flash crowd.**  A sinusoidal day/night rate and a
  6x spike window, both by thinning.  Peak-window queueing must exceed
  trough queueing; the spike must shed (bounded queues convert the crowd
  into rejections) while the same base rate without a spike sheds
  nothing.
* **Prepared-vs-ad-hoc planning.**  The same statement mix run through
  ``engine.query`` (parse + rewrite + optimize per statement) and through
  prepare-once / execute-many.  Modeled planning seconds collapse to ~one
  optimization per SQL shape; wall-clock speedup is reported to
  ``BENCH_E14.json`` (machine-varying, so it stays out of the
  deterministic tables).
* **Closed loop.**  A fixed client population with exponential think
  times: throughput self-limits below capacity and nothing sheds -- the
  interactive-portal regime.

Everything runs on the simulation clock with seeded arrivals; the report
tables are byte-identical across runs (determinism CI relies on this).
"""

import math
import os
import random
import time

from _bench_util import report, write_json
from loadgen import (
    diurnal_times,
    flash_crowd_times,
    make_arrivals,
    poisson_times,
    run_closed_loop,
    run_open_loop,
    zipf_weights,
)
from repro.core import DataType, Field, Schema, Table
from repro.federation import (
    FederatedEngine,
    FederationCatalog,
    Gateway,
    WorkloadManager,
)
from repro.federation.gateway import bind_sql_text
from repro.sim import EventLoop, SimClock

SEED = 20014
SITES = [f"s{i}" for i in range(3)]
FRAGMENTS = 6
ROWS_PER_FRAGMENT = 20
TOTAL_ROWS = FRAGMENTS * ROWS_PER_FRAGMENT
SLOTS = 3
QUEUE_LIMIT = 50
TENANTS = [f"t{i}" for i in range(6)]

# Env-overridable so CI can run a smaller smoke configuration.
QUERIES = int(os.environ.get("E14_QUERIES", "100000"))
CURVE_QUERIES = int(os.environ.get("E14_CURVE_QUERIES", "8000"))
SPEEDUP_QUERIES = int(os.environ.get("E14_SPEEDUP_QUERIES", "2000"))
CLOSED_QUERIES = int(os.environ.get("E14_CLOSED_QUERIES", "40"))
CLOSED_CLIENTS = 6

PROBE_QUERY = "select count(*) from items"

# Shared across report tables and BENCH_E14.json; pytest runs the tests in
# file order, so the JSON written by a later test includes earlier keys.
_SUMMARY: dict = {}


# -- statement mix -------------------------------------------------------------
#
# Three parameterizable shapes (the plan-cache scenario: one template each,
# fresh bindings per execution) plus a LIKE shape whose pattern slot cannot
# hold a placeholder -- it exercises the textual-binding fallback on every
# arrival.  The BETWEEN shape is deliberately spelled in upper case: the
# normalized cache key must fold it together with any other spelling.


def _threshold_params(rng):
    return (rng.randrange(TOTAL_ROWS),)


def _range_params(rng):
    low = rng.randrange(TOTAL_ROWS - 20)
    return (low, low + 20)


def _point_params(rng):
    return (f"k{rng.randrange(TOTAL_ROWS):04d}",)


def _like_params(rng):
    return (f"k00{rng.randrange(10)}%",)


STATEMENTS = [
    ("select count(*) from items where v < ?", _threshold_params),
    ("SELECT k, v FROM items WHERE v BETWEEN ? AND ?", _range_params),
    ("select v from items where k = ?", _point_params),
    ("select k from items where k like ?", _like_params),
]
PREPARABLE_SHAPES = 3  # the LIKE shape falls back to textual binding


def build():
    """items(k, v) hash-fragmented over three sites with RF=2."""
    catalog = FederationCatalog(SimClock())
    for name in SITES:
        catalog.make_site(name)
    schema = Schema(
        "items", (Field("k", DataType.STRING), Field("v", DataType.INTEGER))
    )
    table = Table(schema, [(f"k{i:04d}", i) for i in range(TOTAL_ROWS)])
    placement = [
        [SITES[i % len(SITES)], SITES[(i + 1) % len(SITES)]]
        for i in range(FRAGMENTS)
    ]
    catalog.load_fragmented(table, FRAGMENTS, placement)
    engine = FederatedEngine(catalog)
    loop = EventLoop(catalog.clock)
    return catalog, engine, loop


def build_gateway(queue_limit=QUEUE_LIMIT):
    _, engine, loop = build()
    manager = WorkloadManager(
        engine, loop, scheduler="weighted-fair", max_in_flight=SLOTS
    )
    for name in TENANTS:
        manager.register_tenant(name, queue_limit=queue_limit)
    return Gateway(manager, max_sessions=32, plan_cache_size=64)


def solo_response_seconds():
    """Modeled response time of one probe query on an idle federation."""
    _, engine, _ = build()
    return engine.query(PROBE_QUERY).report.response_seconds


def mix_service_seconds():
    """Mean uncontended response time of the benchmark statement mix.

    Capacity planning must use the mix the load actually sends -- the
    shipped-row shapes cost more than the count(*) probe.
    """
    rng = random.Random(SEED)
    _, engine, _ = build()
    samples = 24
    total = 0.0
    for i in range(samples):
        sql, params_fn = STATEMENTS[i % len(STATEMENTS)]
        bound = bind_sql_text(sql, params_fn(rng))
        total += engine.query(bound, advance_clock=False).report.response_seconds
    return total / samples


def percentile(values, q):
    """Nearest-rank percentile of a non-empty list."""
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100 * len(ordered)))
    return ordered[rank - 1]


def _emit_summary():
    write_json("BENCH_E14", _SUMMARY)


# -- steady state: the SLO report ----------------------------------------------


def test_e14_steady_state_slo(benchmark):
    """85%-of-capacity Poisson load, Zipf tenant skew: per-tenant SLOs and
    a plan-cache hit rate that absorbs nearly all planning."""
    service = mix_service_seconds()
    capacity = SLOTS / service
    deadline = 12 * service
    rng = random.Random(SEED)
    times = poisson_times(rng, 0.85 * capacity, QUERIES)
    arrivals = make_arrivals(
        rng, times, TENANTS, STATEMENTS,
        tenant_weights=zipf_weights(len(TENANTS)),
    )

    gateway = build_gateway()
    outcomes, _ = run_open_loop(gateway, arrivals, deadline=deadline)

    rows = []
    tenant_stats = {}
    for rank, tenant in enumerate(TENANTS):
        outcome = outcomes[tenant]
        lat = outcome.latencies or [0.0]
        stats = {
            "offered": outcome.offered,
            "completed": outcome.completed,
            "qps": round(outcome.qps, 4),
            "p50_s": round(percentile(lat, 50), 6),
            "p95_s": round(percentile(lat, 95), 6),
            "p99_s": round(percentile(lat, 99), 6),
            "shed_rate": round(outcome.rate(outcome.shed), 4),
            "timeout_rate": round(outcome.rate(outcome.timed_out), 4),
            "error_rate": round(outcome.rate(outcome.failed), 4),
        }
        tenant_stats[tenant] = stats
        rows.append([
            tenant, outcome.offered, outcome.completed,
            stats["qps"], stats["p50_s"], stats["p95_s"], stats["p99_s"],
            stats["shed_rate"], stats["timeout_rate"],
        ])

    cache = gateway.plan_cache
    report(
        "e14_steady_state_slo",
        f"E14: steady-state SLOs ({QUERIES} queries at 85% capacity, "
        f"{len(TENANTS)} tenants Zipf-skewed, deadline {deadline:.3f}s, "
        f"plan-cache hit rate {cache.hit_rate:.4f})",
        ["tenant", "offered", "done", "qps", "p50 s", "p95 s", "p99 s",
         "shed", "timeout"],
        rows,
    )

    _SUMMARY.update({
        "config": {
            "queries": QUERIES,
            "tenants": len(TENANTS),
            "slots": SLOTS,
            "queue_limit": QUEUE_LIMIT,
            "offered_load": 0.85,
            "service_seconds": round(service, 6),
            "capacity_qps": round(capacity, 4),
            "deadline_seconds": round(deadline, 6),
        },
        "tenants": tenant_stats,
        "plan_cache": {
            "hits": cache.hits,
            "misses": cache.misses,
            "hit_rate": round(cache.hit_rate, 6),
        },
    })
    _emit_summary()

    # Every arrival was offered; Zipf skew puts t0 well above t5.
    assert sum(o.offered for o in outcomes.values()) == QUERIES
    assert outcomes["t0"].offered > 2 * outcomes["t5"].offered
    # One template per preparable SQL shape: misses stay at the shape count
    # no matter how many executions, so the hit rate approaches 1.
    assert cache.misses == PREPARABLE_SHAPES
    assert cache.hit_rate > 0.99
    # Under 85% load with a bounded queue and deadline the federation keeps
    # its promises: everything completes or is visibly shed/timed out, and
    # nothing errors.
    for outcome in outcomes.values():
        assert outcome.failed == 0
        assert (
            outcome.completed + outcome.shed + outcome.timed_out
            == outcome.offered
        )
    # Queueing shows up in the tail: per tenant the percentiles are
    # ordered, and nothing completes in zero modeled time.
    fastest = min(min(o.latencies) for o in outcomes.values() if o.latencies)
    assert fastest > 0
    for stats in tenant_stats.values():
        assert stats["p50_s"] <= stats["p95_s"] <= stats["p99_s"]

    benchmark(lambda: run_open_loop(
        build_gateway(),
        make_arrivals(
            random.Random(SEED), poisson_times(random.Random(SEED), 0.5 * capacity, 12),
            TENANTS, STATEMENTS,
        ),
    ))


# -- diurnal curve and flash crowd ---------------------------------------------


def test_e14_diurnal_and_flash_crowd(benchmark):
    """Peak-hour queueing beats the trough; a 6x flash crowd sheds where
    the same base rate alone does not."""
    service = mix_service_seconds()
    capacity = SLOTS / service

    # Diurnal: mean 60% of capacity with a 0.9 swing, so the peak hour
    # (~114% of capacity) queues while the trough (~6%) idles -- and the
    # mild overshoot keeps the peak backlog small enough to drain before
    # the trough window opens.
    base = 0.6 * capacity
    horizon = CURVE_QUERIES / base
    period = horizon  # one full day over the run
    rng = random.Random(SEED + 1)
    d_times = diurnal_times(rng, base, horizon, period, depth=0.9)
    d_arrivals = make_arrivals(rng, d_times, TENANTS, STATEMENTS)
    gateway = build_gateway()
    d_outcomes, d_handles = run_open_loop(gateway, d_arrivals)

    # The sine peaks at period/4 and troughs at 3*period/4; compare queue
    # waits in windows around each (the gap after the peak lets its
    # residual backlog drain before the trough window is scored).
    peak_waits = [
        h.queue_wait_seconds for h in d_handles
        if 0.10 * period <= h.submitted_at <= 0.45 * period
    ]
    trough_waits = [
        h.queue_wait_seconds for h in d_handles
        if 0.55 * period <= h.submitted_at <= 0.95 * period
    ]

    # Flash crowd: a comfortable 50% base rate with a 6x spike over 10% of
    # the horizon -- offered load hits 3x capacity inside the window.
    f_rng = random.Random(SEED + 2)
    f_horizon = CURVE_QUERIES / (0.5 * capacity)
    f_times = flash_crowd_times(
        f_rng, 0.5 * capacity, f_horizon,
        spike_start=0.4 * f_horizon,
        spike_duration=0.1 * f_horizon,
        spike_factor=6.0,
    )
    f_arrivals = make_arrivals(f_rng, f_times, TENANTS, STATEMENTS)
    f_outcomes, _ = run_open_loop(build_gateway(), f_arrivals)
    f_shed = sum(o.shed for o in f_outcomes.values())
    f_offered = sum(o.offered for o in f_outcomes.values())

    # Control: the identical base rate with no spike sheds nothing.
    c_rng = random.Random(SEED + 2)
    c_times = flash_crowd_times(
        c_rng, 0.5 * capacity, f_horizon,
        spike_start=0.4 * f_horizon,
        spike_duration=0.1 * f_horizon,
        spike_factor=1.0,
    )
    c_arrivals = make_arrivals(c_rng, c_times, TENANTS, STATEMENTS)
    c_outcomes, _ = run_open_loop(build_gateway(), c_arrivals)
    c_shed = sum(o.shed for o in c_outcomes.values())

    report(
        "e14_curves",
        f"E14: diurnal + flash crowd (diurnal {len(d_times)} arrivals at "
        f"60% mean, flash {len(f_times)} arrivals, 6x spike over 10% of "
        "horizon)",
        ["shape", "arrivals", "shed", "p95 queue wait s", "p99 latency s"],
        [
            ["diurnal peak window", len(peak_waits), "-",
             percentile(peak_waits, 95), "-"],
            ["diurnal trough window", len(trough_waits), "-",
             percentile(trough_waits, 95), "-"],
            ["flash crowd", f_offered, f_shed, "-",
             percentile([x for o in f_outcomes.values() for x in o.latencies], 99)],
            ["flash control (no spike)", sum(o.offered for o in c_outcomes.values()),
             c_shed, "-",
             percentile([x for o in c_outcomes.values() for x in o.latencies], 99)],
        ],
    )

    _SUMMARY["curves"] = {
        "diurnal_peak_p95_wait_s": round(percentile(peak_waits, 95), 6),
        "diurnal_trough_p95_wait_s": round(percentile(trough_waits, 95), 6),
        "flash_offered": f_offered,
        "flash_shed": f_shed,
        "flash_shed_rate": round(f_shed / f_offered, 4),
        "control_shed": c_shed,
    }
    _emit_summary()

    # Day/night asymmetry: the peak window queues, the trough coasts.
    assert len(peak_waits) > 1.5 * len(trough_waits)
    assert percentile(peak_waits, 95) > 0
    assert percentile(peak_waits, 95) > 2 * percentile(trough_waits, 95)
    # The spike overloads (bounded queues shed); the same base rate alone
    # does not shed at all.
    assert f_shed > 0
    assert c_shed == 0
    # Nothing fails in either run.
    assert all(o.failed == 0 for o in f_outcomes.values())
    assert all(o.failed == 0 for o in d_outcomes.values())

    benchmark(lambda: diurnal_times(random.Random(SEED), base, horizon / 50, period))


# -- prepared-vs-ad-hoc planning cost ------------------------------------------


def test_e14_prepared_speedup(benchmark):
    """Prepare-once/execute-many collapses planning to one optimization
    per SQL shape, and beats parse-per-statement wall clock."""
    rng = random.Random(SEED + 3)
    shapes = STATEMENTS[:PREPARABLE_SHAPES]
    workload = [
        (sql, params_fn(rng))
        for sql, params_fn in (
            shapes[i % len(shapes)] for i in range(SPEEDUP_QUERIES)
        )
    ]

    # Ad-hoc: every statement is parsed, rewritten and optimized.  Bind
    # the parameters textually (the pre-gateway client's only option).
    _, adhoc_engine, _ = build()
    t0 = time.perf_counter()
    adhoc_opt = 0.0
    for sql, params in workload:
        result = adhoc_engine.query(
            bind_sql_text(sql, params), advance_clock=False
        )
        adhoc_opt += result.plan.optimization_seconds
    adhoc_wall = time.perf_counter() - t0

    # Prepared: one template per shape, bindings per execution.
    _, prep_engine, _ = build()
    templates = {}
    t0 = time.perf_counter()
    prep_opt = 0.0
    for sql, params in workload:
        prepared = templates.get(sql)
        if prepared is None:
            prepared = prep_engine.prepare(sql)
            templates[sql] = prepared
            prep_opt += prepared.optimization_seconds
        result = prep_engine.execute(prepared, params, advance_clock=False)
        prep_opt += result.plan.optimization_seconds  # 0 on the fast path
    prep_wall = time.perf_counter() - t0

    wall_speedup = adhoc_wall / prep_wall
    report(
        "e14_prepared_planning",
        f"E14: modeled planning cost over {SPEEDUP_QUERIES} statements, "
        f"{len(shapes)} SQL shapes (wall-clock numbers go to BENCH_E14.json)",
        ["path", "optimizations", "modeled planning s"],
        [
            ["ad-hoc (parse per statement)", SPEEDUP_QUERIES, adhoc_opt],
            ["prepared (plan per shape)", len(shapes), prep_opt],
        ],
    )

    _SUMMARY["planning"] = {
        "statements": SPEEDUP_QUERIES,
        "shapes": len(shapes),
        "modeled_adhoc_seconds": round(adhoc_opt, 6),
        "modeled_prepared_seconds": round(prep_opt, 6),
        "adhoc_wall_ms_per_stmt": round(1000 * adhoc_wall / SPEEDUP_QUERIES, 4),
        "prepared_wall_ms_per_stmt": round(1000 * prep_wall / SPEEDUP_QUERIES, 4),
        "wall_speedup": round(wall_speedup, 3),
    }
    _emit_summary()

    # Modeled planning shrinks by the execution-to-shape ratio (one
    # optimization per shape instead of one per statement); the fast path
    # charges zero optimization seconds per execution.
    assert prep_opt <= adhoc_opt * len(shapes) / SPEEDUP_QUERIES * 1.5
    assert prep_opt == sum(t.optimization_seconds for t in templates.values())
    # Wall clock: skipping parse + rewrite + optimize is a real speedup,
    # asserted conservatively (measured ~2x) to stay robust on slow CI.
    assert wall_speedup > 1.2

    benchmark(lambda: prep_engine.execute(
        templates[shapes[0][0]], (50,), advance_clock=False
    ))


# -- closed loop ----------------------------------------------------------------


def test_e14_closed_loop(benchmark):
    """A fixed interactive population self-limits below capacity: every
    statement completes, nothing sheds."""
    service = mix_service_seconds()
    capacity = SLOTS / service
    rng = random.Random(SEED + 4)
    clients = [TENANTS[i % 3] for i in range(CLOSED_CLIENTS)]
    gateway = build_gateway()
    outcomes, handles = run_closed_loop(
        gateway, rng, clients, STATEMENTS,
        queries_per_client=CLOSED_QUERIES,
        think_rate=1.0 / (2 * service),  # mean think = 2 service times
    )

    total = CLOSED_CLIENTS * CLOSED_QUERIES
    span = max(h.finished_at for h in handles) - min(
        h.submitted_at for h in handles
    )
    throughput = len(handles) / span
    lat = [h.finished_at - h.submitted_at for h in handles]
    report(
        "e14_closed_loop",
        f"E14: closed loop ({CLOSED_CLIENTS} clients x {CLOSED_QUERIES} "
        f"statements, mean think {2 * service:.3f}s)",
        ["tenant", "offered", "completed", "p50 s", "p95 s"],
        [
            [tenant, outcomes[tenant].offered, outcomes[tenant].completed,
             percentile(outcomes[tenant].latencies, 50),
             percentile(outcomes[tenant].latencies, 95)]
            for tenant in sorted(outcomes)
        ],
    )

    _SUMMARY["closed_loop"] = {
        "clients": CLOSED_CLIENTS,
        "statements": total,
        "throughput_qps": round(throughput, 4),
        "p50_s": round(percentile(lat, 50), 6),
        "p95_s": round(percentile(lat, 95), 6),
    }
    _emit_summary()

    # Closed-loop conservation: every statement issued, none shed or lost.
    assert sum(o.offered for o in outcomes.values()) == total
    assert sum(o.completed for o in outcomes.values()) == total
    assert all(o.shed == 0 and o.failed == 0 for o in outcomes.values())
    # Self-limiting: think time keeps offered load under capacity.
    assert throughput < capacity

    benchmark(lambda: run_closed_loop(
        build_gateway(), random.Random(SEED), clients[:2], STATEMENTS,
        queries_per_client=2, think_rate=1.0 / (2 * service),
    ))

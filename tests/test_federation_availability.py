"""Tests for placement strategies, failure injection and availability probes."""

import random

import pytest

from repro.core import DataType, Field, Schema, Table
from repro.core.errors import QueryError
from repro.federation import (
    AvailabilityProbe,
    FailureInjector,
    FederationCatalog,
    PlacementStrategy,
    place_fragments,
)
from repro.federation.availability import hardware_cost
from repro.sim import EventLoop, SimClock


SITES = ["s0", "s1", "s2", "s3"]


class TestPlacement:
    def test_central_everything_on_one_site(self):
        placement = place_fragments(PlacementStrategy.CENTRAL, 4, SITES)
        assert placement == [["s0"]] * 4
        assert hardware_cost(placement) == 4

    def test_fragmented_spreads_without_replication(self):
        placement = place_fragments(PlacementStrategy.FRAGMENTED, 4, SITES)
        assert [p[0] for p in placement] == SITES
        assert hardware_cost(placement) == 4

    def test_hot_standby_doubles_hardware(self):
        placement = place_fragments(PlacementStrategy.HOT_STANDBY, 4, SITES)
        assert all(p == ["s0", "s1"] for p in placement)
        assert hardware_cost(placement) == 8  # the paper's "doubling"

    def test_fragment_replicate(self):
        placement = place_fragments(
            PlacementStrategy.FRAGMENT_REPLICATE, 4, SITES, replication_factor=2
        )
        assert all(len(p) == 2 for p in placement)
        assert placement[0] == ["s0", "s1"]
        assert placement[3] == ["s3", "s0"]

    def test_replication_factor_capped_at_site_count(self):
        placement = place_fragments(
            PlacementStrategy.FRAGMENT_REPLICATE, 2, ["a", "b"], replication_factor=5
        )
        assert all(len(p) == 2 for p in placement)

    def test_hot_standby_needs_two_sites(self):
        with pytest.raises(QueryError):
            place_fragments(PlacementStrategy.HOT_STANDBY, 2, ["only"])

    def test_empty_sites_rejected(self):
        with pytest.raises(QueryError):
            place_fragments(PlacementStrategy.CENTRAL, 1, [])


def build_catalog(placement):
    catalog = FederationCatalog(SimClock())
    for name in SITES:
        catalog.make_site(name)
    schema = Schema("parts", (Field("sku", DataType.STRING),))
    table = Table(schema, [(f"A-{i}",) for i in range(40)])
    catalog.load_fragmented(table, len(placement), placement)
    return catalog


class TestAvailabilityProbe:
    def test_full_availability_when_all_up(self):
        catalog = build_catalog(place_fragments(PlacementStrategy.FRAGMENTED, 4, SITES))
        assert AvailabilityProbe(catalog).available_fraction() == 1.0

    def test_fragmented_loses_only_a_slice(self):
        catalog = build_catalog(place_fragments(PlacementStrategy.FRAGMENTED, 4, SITES))
        catalog.site("s2").up = False
        assert AvailabilityProbe(catalog).available_fraction() == pytest.approx(0.75)

    def test_central_loses_everything(self):
        catalog = build_catalog(place_fragments(PlacementStrategy.CENTRAL, 4, SITES))
        catalog.site("s0").up = False
        assert AvailabilityProbe(catalog).available_fraction() == 0.0

    def test_replicated_survives_single_failure(self):
        catalog = build_catalog(
            place_fragments(PlacementStrategy.FRAGMENT_REPLICATE, 4, SITES, 2)
        )
        catalog.site("s0").up = False
        assert AvailabilityProbe(catalog).available_fraction() == 1.0

    def test_mean_and_full_availability_from_samples(self):
        catalog = build_catalog(place_fragments(PlacementStrategy.FRAGMENTED, 4, SITES))
        probe = AvailabilityProbe(catalog)
        probe.sample()
        catalog.site("s0").up = False
        probe.sample()
        assert probe.mean_availability() == pytest.approx(0.875)
        assert probe.full_availability_fraction() == 0.5

    def test_probe_attached_to_loop(self):
        catalog = build_catalog(place_fragments(PlacementStrategy.FRAGMENTED, 4, SITES))
        loop = EventLoop(catalog.clock)
        probe = AvailabilityProbe(catalog)
        probe.attach_to(loop, interval=10.0)
        loop.run_until(55.0)
        assert len(probe.samples) == 5


class TestFailureInjector:
    def test_failures_and_repairs_occur(self):
        catalog = build_catalog(place_fragments(PlacementStrategy.FRAGMENTED, 4, SITES))
        loop = EventLoop(catalog.clock)
        injector = FailureInjector(
            loop, catalog, mttf=100.0, mttr=20.0, rng=random.Random(1)
        )
        injector.start()
        loop.run_until(2000.0)
        assert injector.failures > 0
        assert injector.repairs > 0

    def test_availability_degrades_under_failures(self):
        catalog = build_catalog(place_fragments(PlacementStrategy.FRAGMENTED, 4, SITES))
        loop = EventLoop(catalog.clock)
        probe = AvailabilityProbe(catalog)
        probe.attach_to(loop, interval=5.0)
        FailureInjector(loop, catalog, mttf=50.0, mttr=50.0, rng=random.Random(2)).start()
        loop.run_until(5000.0)
        assert 0.2 < probe.mean_availability() < 0.95

    def test_replication_beats_fragmentation_under_same_failures(self):
        results = {}
        for label, strategy, rf in [
            ("fragmented", PlacementStrategy.FRAGMENTED, 1),
            ("replicated", PlacementStrategy.FRAGMENT_REPLICATE, 2),
        ]:
            catalog = build_catalog(place_fragments(strategy, 4, SITES, rf))
            loop = EventLoop(catalog.clock)
            probe = AvailabilityProbe(catalog)
            probe.attach_to(loop, interval=5.0)
            FailureInjector(
                loop, catalog, mttf=60.0, mttr=30.0, rng=random.Random(3)
            ).start()
            loop.run_until(3000.0)
            results[label] = probe.mean_availability()
        assert results["replicated"] > results["fragmented"]

    def test_bad_parameters_rejected(self):
        catalog = build_catalog(place_fragments(PlacementStrategy.FRAGMENTED, 4, SITES))
        loop = EventLoop(catalog.clock)
        with pytest.raises(QueryError):
            FailureInjector(loop, catalog, mttf=0, mttr=1, rng=random.Random(0))


class TestNines:
    def test_nines_scale(self):
        catalog = build_catalog(place_fragments(PlacementStrategy.FRAGMENTED, 4, SITES))
        probe = AvailabilityProbe(catalog)
        probe.samples = [(0.0, 0.99999)]
        assert probe.nines() == pytest.approx(5.0, abs=0.01)
        probe.samples = [(0.0, 0.9)]
        assert probe.nines() == pytest.approx(1.0, abs=0.01)

    def test_perfect_availability_is_infinite_nines(self):
        catalog = build_catalog(place_fragments(PlacementStrategy.FRAGMENTED, 4, SITES))
        probe = AvailabilityProbe(catalog)
        probe.sample()
        assert probe.nines() == float("inf")

    def test_zero_availability(self):
        catalog = build_catalog(place_fragments(PlacementStrategy.CENTRAL, 4, SITES))
        catalog.site("s0").up = False
        probe = AvailabilityProbe(catalog)
        probe.sample()
        assert probe.nines() == 0.0


class TestServingUnderChurn:
    def test_replicated_federation_answers_through_failures(self):
        """Queries keep succeeding while sites crash and repair around them."""
        from repro.federation import FederatedEngine

        catalog = build_catalog(
            place_fragments(PlacementStrategy.FRAGMENT_REPLICATE, 4, SITES, 3)
        )
        loop = EventLoop(catalog.clock)
        FailureInjector(
            loop, catalog, mttf=40.0, mttr=20.0, rng=random.Random(9)
        ).start()
        engine = FederatedEngine(catalog)

        answered = 0
        failed = 0
        for _ in range(60):
            loop.run_until(catalog.clock.now() + 10.0)
            if not catalog.up_sites():
                continue  # total blackout: nothing to ask
            try:
                result = engine.query("select count(*) as n from parts")
            except QueryError:
                failed += 1
                continue
            assert result.table.to_dicts() == [{"n": 40}]
            answered += 1

        # RF=3 over 4 sites: the vast majority of the hour is servable.
        assert answered >= 50
        assert failed <= 10

"""Tests for the XQuery FLWOR subset."""

import pytest

from repro.xmlkit import XQueryError, parse_xml, xquery

DOC = parse_xml(
    """
<hotels>
  <row><hotel_id>h1</hotel_id><name>Chain Hotel One</name>
       <rate>150</rate><rooms>3</rooms><club>true</club></row>
  <row><hotel_id>h2</hotel_id><name>Budget Inn</name>
       <rate>80</rate><rooms>0</rooms><club>false</club></row>
  <row><hotel_id>h3</hotel_id><name>Chain Hotel Two</name>
       <rate>220</rate><rooms>5</rooms><club>true</club></row>
  <row><hotel_id>h4</hotel_id><name>Airport Suites</name>
       <rate>120</rate><rooms>2</rooms><club>true</club></row>
</hotels>
"""
)


class TestFlworBasics:
    def test_for_return_constructs_elements(self):
        results = xquery(DOC, "for $h in //row return <id>{$h/hotel_id/text()}</id>")
        assert [r.text for r in results] == ["h1", "h2", "h3", "h4"]
        assert all(r.tag == "id" for r in results)

    def test_where_numeric_comparison(self):
        results = xquery(
            DOC,
            "for $h in //row where $h/rate < 160 "
            "return <id>{$h/hotel_id/text()}</id>",
        )
        assert [r.text for r in results] == ["h1", "h2", "h4"]

    def test_where_and_or(self):
        results = xquery(
            DOC,
            "for $h in //row where $h/rooms > 0 and $h/rate <= 150 "
            "or $h/hotel_id = 'h3' return <id>{$h/hotel_id/text()}</id>",
        )
        assert [r.text for r in results] == ["h1", "h3", "h4"]

    def test_where_contains(self):
        results = xquery(
            DOC,
            "for $h in //row where contains($h/name, 'Chain') "
            "return <id>{$h/hotel_id/text()}</id>",
        )
        assert [r.text for r in results] == ["h1", "h3"]

    def test_order_by_ascending_numeric(self):
        results = xquery(
            DOC,
            "for $h in //row order by $h/rate "
            "return <id>{$h/hotel_id/text()}</id>",
        )
        assert [r.text for r in results] == ["h2", "h4", "h1", "h3"]

    def test_order_by_descending(self):
        results = xquery(
            DOC,
            "for $h in //row order by $h/rate descending "
            "return <id>{$h/hotel_id/text()}</id>",
        )
        assert [r.text for r in results] == ["h3", "h1", "h4", "h2"]

    def test_full_flwor_paper_style(self):
        # The traveler query, XQuery edition.
        results = xquery(
            DOC,
            "for $h in //row "
            "where $h/rooms > 0 and $h/rate <= 200 and $h/club = 'true' "
            "order by $h/rate "
            "return <offer hotel=\"{$h/hotel_id/text()}\">{$h/rate/text()}</offer>",
        )
        assert [(r.get("hotel"), r.text) for r in results] == [
            ("h4", "120"), ("h1", "150"),
        ]

    def test_template_with_nested_elements(self):
        results = xquery(
            DOC,
            "for $h in //row where $h/hotel_id = 'h1' return "
            "<hotel><id>{$h/hotel_id/text()}</id><price>{$h/rate/text()}</price></hotel>",
        )
        assert results[0].first("price").text == "150"

    def test_hole_values_are_escaped(self):
        doc = parse_xml("<r><row><name>a &amp; b &lt; c</name></row></r>")
        results = xquery(doc, "for $x in //row return <n>{$x/name/text()}</n>")
        assert results[0].text == "a & b < c"

    def test_missing_path_renders_empty(self):
        results = xquery(DOC, "for $h in //row[1] return <x>{$h/ghost/text()}</x>")
        assert results[0].text == ""

    def test_variable_itself_is_full_text(self):
        results = xquery(
            DOC, "for $h in //row[1] return <all>{$h}</all>"
        )
        assert "h1" in results[0].text


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "select * from t",
            "for $h in //row",  # no return
            "for $h in //row return notxml",
            "for $h in //row where ??? return <x/>",
            "for $h in //row where $other/rate > 1 return <x/>",
            "for $h in //row return <x>{$h/name/text()</x>",  # broken template
        ],
    )
    def test_rejected(self, bad):
        with pytest.raises(XQueryError):
            xquery(DOC, bad)


class TestEngineSurface:
    def test_engine_xquery_over_integrated_content(self):
        from repro.core import DataType, Field, Schema, Table
        from repro.federation import FederatedEngine, FederationCatalog
        from repro.sim import SimClock

        catalog = FederationCatalog(SimClock())
        catalog.make_site("s0")
        schema = Schema(
            "parts", (Field("sku", DataType.STRING), Field("price", DataType.FLOAT))
        )
        catalog.load_fragmented(
            Table(schema, [("A-1", 5.0), ("A-2", 50.0), ("A-3", 2.0)]), 1, [["s0"]]
        )
        engine = FederatedEngine(catalog)
        results = engine.xquery(
            "parts",
            "for $p in //row where $p/price < 10 order by $p/price "
            "return <cheap sku=\"{$p/sku/text()}\"/>",
        )
        assert [r.get("sku") for r in results] == ["A-3", "A-1"]

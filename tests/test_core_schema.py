"""Unit tests for schemas, fields, data types and Money."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import DataType, Field, Money, Schema, SchemaError, TransformError


def make_schema():
    return Schema(
        "parts",
        (
            Field("part_id", DataType.STRING, nullable=False),
            Field("part_name", DataType.STRING),
            Field("price", DataType.MONEY),
            Field("qty", DataType.INTEGER),
        ),
    )


class TestDataType:
    @pytest.mark.parametrize(
        "dtype,good,bad",
        [
            (DataType.STRING, "abc", 7),
            (DataType.TEXT, "prose", 1.5),
            (DataType.INTEGER, 3, "3"),
            (DataType.FLOAT, 2.5, "x"),
            (DataType.BOOLEAN, True, 1),
            (DataType.MONEY, Money(1.0, "USD"), 1.0),
            (DataType.TIMESTAMP, 12.0, "noon"),
        ],
    )
    def test_validate_accepts_and_rejects(self, dtype, good, bad):
        assert dtype.validate(good)
        assert not dtype.validate(bad)

    def test_none_always_validates(self):
        assert all(dtype.validate(None) for dtype in DataType)

    def test_bool_is_not_integer(self):
        assert not DataType.INTEGER.validate(True)


class TestField:
    def test_invalid_name_rejected(self):
        with pytest.raises(SchemaError):
            Field("bad name", DataType.STRING)

    def test_renamed_preserves_type(self):
        field = Field("a", DataType.FLOAT, nullable=False, description="d")
        renamed = field.renamed("b")
        assert renamed.name == "b"
        assert renamed.dtype is DataType.FLOAT
        assert not renamed.nullable
        assert renamed.description == "d"


class TestSchema:
    def test_duplicate_field_rejected(self):
        with pytest.raises(SchemaError):
            Schema("s", (Field("x", DataType.STRING), Field("x", DataType.INTEGER)))

    def test_lookup(self):
        schema = make_schema()
        assert schema.field_names == ("part_id", "part_name", "price", "qty")
        assert schema.index_of("price") == 2
        assert schema.has_field("qty")
        assert not schema.has_field("missing")
        assert schema.field_named("qty").dtype is DataType.INTEGER

    def test_missing_field_raises(self):
        with pytest.raises(SchemaError):
            make_schema().field_named("nope")
        with pytest.raises(SchemaError):
            make_schema().index_of("nope")

    def test_project_reorders(self):
        projected = make_schema().project(["qty", "part_id"])
        assert projected.field_names == ("qty", "part_id")

    def test_rename_fields(self):
        renamed = make_schema().rename_fields({"part_name": "name"})
        assert renamed.field_names == ("part_id", "name", "price", "qty")

    def test_rename_missing_rejected(self):
        with pytest.raises(SchemaError):
            make_schema().rename_fields({"ghost": "g"})

    def test_extend_and_drop(self):
        extended = make_schema().extend([Field("supplier", DataType.STRING)])
        assert extended.has_field("supplier")
        dropped = extended.drop(["qty", "supplier"])
        assert dropped.field_names == ("part_id", "part_name", "price")

    def test_drop_missing_rejected(self):
        with pytest.raises(SchemaError):
            make_schema().drop(["ghost"])

    def test_prefixed(self):
        prefixed = make_schema().prefixed("p_")
        assert prefixed.field_names[0] == "p_part_id"

    def test_union_compatibility(self):
        schema = make_schema()
        assert schema.union_compatible(make_schema())
        assert not schema.union_compatible(schema.project(["part_id"]))

    def test_validate_row_happy_path(self):
        make_schema().validate_row(("p1", "bolt", Money(1.0, "USD"), 5))

    def test_validate_row_wrong_arity(self):
        with pytest.raises(SchemaError):
            make_schema().validate_row(("p1",))

    def test_validate_row_type_mismatch(self):
        with pytest.raises(SchemaError):
            make_schema().validate_row(("p1", "bolt", 1.0, 5))

    def test_validate_row_null_in_non_nullable(self):
        with pytest.raises(SchemaError):
            make_schema().validate_row((None, "bolt", Money(1.0, "USD"), 5))

    def test_iteration_and_len(self):
        schema = make_schema()
        assert len(schema) == 4
        assert [f.name for f in schema] == list(schema.field_names)


class TestMoney:
    def test_same_currency_arithmetic(self):
        total = Money(10.0, "USD") + Money(2.5, "usd")
        assert total == Money(12.5, "USD")
        assert Money(10.0, "USD") - Money(4.0, "USD") == Money(6.0, "USD")
        assert 2 * Money(3.0, "EUR") == Money(6.0, "EUR")

    def test_currency_normalized_to_upper(self):
        assert Money(1.0, "frf").currency == "FRF"

    def test_cross_currency_operations_rejected(self):
        with pytest.raises(TransformError):
            Money(1.0, "USD") + Money(1.0, "FRF")
        with pytest.raises(TransformError):
            Money(1.0, "USD") < Money(1.0, "FRF")

    def test_invalid_currency_rejected(self):
        with pytest.raises(TransformError):
            Money(1.0, "12")
        with pytest.raises(TransformError):
            Money(1.0, "")

    def test_convert_uses_explicit_rate(self):
        converted = Money(100.0, "FRF").convert("USD", 0.14)
        assert converted.currency == "USD"
        assert converted.amount == pytest.approx(14.0)

    def test_convert_rejects_bad_rate(self):
        with pytest.raises(TransformError):
            Money(1.0, "USD").convert("EUR", 0.0)

    def test_comparison_within_currency(self):
        assert Money(1.0, "USD") < Money(2.0, "USD")
        assert Money(2.0, "USD") >= Money(2.0, "USD")

    def test_rounded(self):
        assert Money(1.005, "USD").rounded() == Money(1.0, "USD")
        assert str(Money(3.14159, "USD")) == "3.14 USD"

    @given(
        st.floats(min_value=-1e9, max_value=1e9),
        st.floats(min_value=-1e9, max_value=1e9),
    )
    def test_addition_commutes(self, a, b):
        left = Money(a, "USD") + Money(b, "USD")
        right = Money(b, "USD") + Money(a, "USD")
        assert left == right

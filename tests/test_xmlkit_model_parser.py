"""Unit tests for the XML model and strict parser."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.xmlkit import XmlElement, XmlParseError, parse_xml, xml_escape


class TestXmlElement:
    def test_builder_and_text(self):
        catalog = XmlElement("catalog")
        item = catalog.element("item", {"sku": "A-1"})
        item.append("bolt")
        assert catalog.first("item").text == "bolt"
        assert catalog.first("item").get("sku") == "A-1"

    def test_full_text_spans_subtree(self):
        root = parse_xml("<a>x<b>y</b>z</a>")
        assert root.full_text() == "xyz"
        assert root.text == "xz"

    def test_child_elements_filter_by_tag(self):
        root = parse_xml("<r><a/><b/><a/></r>")
        assert len(root.child_elements("a")) == 2
        assert len(root.child_elements()) == 3

    def test_iter_descendants_document_order(self):
        root = parse_xml("<r><a><b/></a><c/></r>")
        assert [e.tag for e in root.iter_descendants()] == ["a", "b", "c"]

    def test_equality_is_structural(self):
        assert parse_xml("<a x='1'>t</a>") == parse_xml('<a x="1">t</a>')
        assert parse_xml("<a>t</a>") != parse_xml("<a>u</a>")

    def test_copy_is_deep(self):
        original = parse_xml("<a><b>x</b></a>")
        duplicate = original.copy()
        duplicate.first("b").children[0:1] = ["y"]
        assert original.first("b").text == "x"

    def test_parent_links(self):
        root = parse_xml("<a><b><c/></b></a>")
        c = root.first("b").first("c")
        assert c.parent.tag == "b"
        assert c.parent.parent is root


class TestSerialization:
    def test_round_trip(self):
        markup = '<catalog><item sku="A-1">bolt &amp; nut</item><empty/></catalog>'
        assert parse_xml(parse_xml(markup).to_string()) == parse_xml(markup)

    def test_empty_element_self_closes(self):
        assert XmlElement("a").to_string() == "<a/>"

    def test_attribute_escaping(self):
        element = XmlElement("a", {"t": 'x "y" & z'})
        assert parse_xml(element.to_string()).get("t") == 'x "y" & z'

    def test_pretty_print_indents(self):
        root = parse_xml("<a><b>x</b></a>")
        pretty = root.to_string(indent=2)
        assert "\n  <b>" in pretty
        assert parse_xml(pretty).first("b").text == "x"

    def test_xml_escape(self):
        assert xml_escape("<a & b>") == "&lt;a &amp; b&gt;"
        assert xml_escape('say "hi"', quote=True) == "say &quot;hi&quot;"


class TestStrictParsing:
    def test_declaration_and_comment_skipped(self):
        root = parse_xml('<?xml version="1.0"?><!-- c --><a>x</a>')
        assert root.tag == "a"

    def test_cdata_preserved_verbatim(self):
        root = parse_xml("<a><![CDATA[<not> & markup]]></a>")
        assert root.text == "<not> & markup"

    def test_numeric_character_references(self):
        assert parse_xml("<a>&#65;&#x42;</a>").text == "AB"

    def test_predefined_entities(self):
        assert parse_xml("<a>&lt;&gt;&amp;&quot;&apos;</a>").text == "<>&\"'"

    def test_namespaced_tags_are_opaque_names(self):
        root = parse_xml("<cbl:order><cbl:line/></cbl:order>")
        assert root.tag == "cbl:order"
        assert root.first("cbl:line") is not None

    @pytest.mark.parametrize(
        "bad",
        [
            "<a><b></a></b>",  # mismatched nesting
            "<a>",  # unclosed
            "</a>",  # close without open
            "<a></a><b></b>",  # two roots
            "text only",  # no root
            "",  # empty
            "<a>&nope;</a>",  # unknown entity
            "<a x='1' x='2'/>",  # duplicate attribute
            "<a x=unquoted/>",  # unquoted attribute
            "<1tag/>",  # invalid name
            "<a><![CDATA[open</a>",  # unterminated CDATA
            "<!-- unterminated",  # unterminated comment
        ],
    )
    def test_malformed_documents_rejected(self, bad):
        with pytest.raises(XmlParseError):
            parse_xml(bad)

    def test_error_carries_position(self):
        with pytest.raises(XmlParseError) as excinfo:
            parse_xml("<a><b></c></a>")
        assert excinfo.value.position > 0

    def test_whitespace_outside_root_allowed(self):
        assert parse_xml("  <a/>  \n").tag == "a"

    def test_text_outside_root_rejected(self):
        with pytest.raises(XmlParseError):
            parse_xml("<a/>trailing")


@st.composite
def xml_trees(draw, depth=0):
    tag = draw(st.sampled_from(["a", "b", "c", "item", "price"]))
    attrs = draw(
        st.dictionaries(
            st.sampled_from(["x", "y", "sku"]),
            st.text(
                alphabet=st.characters(min_codepoint=32, max_codepoint=126),
                max_size=8,
            ),
            max_size=2,
        )
    )
    element = XmlElement(tag, attrs)
    if depth < 2:
        for child in draw(st.lists(xml_trees(depth=depth + 1), max_size=3)):
            element.append(child)
    text = draw(
        st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=10)
    )
    if text:
        element.append(text)
    return element


class TestRoundTripProperty:
    @given(xml_trees())
    def test_serialize_parse_round_trip(self, tree):
        assert parse_xml(tree.to_string()) == tree

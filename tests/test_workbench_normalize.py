"""Tests for currency, unit and delivery-time normalization."""

import pytest

from repro.core import Money, TransformError
from repro.workbench import (
    CurrencyNormalizer,
    DeliveryPolicy,
    DeliveryTimeNormalizer,
    UnitNormalizer,
)
from repro.workbench.normalize import parse_price


class TestParsePrice:
    @pytest.mark.parametrize(
        "text,amount,currency",
        [
            ("$5.00", 5.0, "USD"),
            ("F30.00", 30.0, "FRF"),
            ("€9.99", 9.99, "EUR"),
            ("USD 1,234.50", 1234.5, "USD"),
            ("5,00 FRF", 5.0, "FRF"),
            ("  12.00 GBP ", 12.0, "GBP"),
            ("7.25", 7.25, "USD"),
        ],
    )
    def test_formats(self, text, amount, currency):
        money = parse_price(text)
        assert money.amount == pytest.approx(amount)
        assert money.currency == currency

    def test_default_currency_honoured(self):
        assert parse_price("3.00", default_currency="EUR").currency == "EUR"

    def test_garbage_rejected(self):
        with pytest.raises(TransformError):
            parse_price("call for quote")


class TestCurrencyNormalizer:
    def make(self):
        return CurrencyNormalizer("USD", {"FRF": 0.14, "EUR": 1.1})

    def test_same_currency_passthrough(self):
        assert self.make().normalize(Money(5.0, "USD")) == Money(5.0, "USD")

    def test_converts_francs(self):
        normalized = self.make().normalize(Money(100.0, "FRF"))
        assert normalized.currency == "USD"
        assert normalized.amount == pytest.approx(14.0)

    def test_parses_then_converts_strings(self):
        normalized = self.make().normalize("5,00 FRF")
        assert normalized.amount == pytest.approx(0.7)

    def test_missing_rate_rejected(self):
        with pytest.raises(TransformError):
            self.make().normalize(Money(1.0, "JPY"))

    def test_target_rate_defaults_to_one(self):
        normalizer = CurrencyNormalizer("usd", {})
        assert normalizer.normalize(Money(2.0, "USD")).amount == 2.0


class TestUnitNormalizer:
    def test_builtin_conversions(self):
        units = UnitNormalizer()
        assert units.convert(1.0, "in", "mm") == pytest.approx(25.4)
        assert units.convert(1.0, "lb", "g") == pytest.approx(453.59237)
        assert units.convert(3.0, "dozen", "each") == 36.0

    def test_to_canonical(self):
        units = UnitNormalizer()
        assert units.to_canonical(100.0, "cm") == pytest.approx(1.0)
        assert units.family_of("oz") == "mass"

    def test_cross_family_rejected(self):
        with pytest.raises(TransformError):
            UnitNormalizer().convert(1.0, "kg", "m")

    def test_unknown_unit_rejected(self):
        with pytest.raises(TransformError):
            UnitNormalizer().convert(1.0, "cubit", "m")

    def test_custom_unit(self):
        units = UnitNormalizer()
        units.register("pack12", "count", 12.0)
        assert units.convert(2.0, "pack12", "each") == 24.0

    def test_bad_factor_rejected(self):
        with pytest.raises(TransformError):
            UnitNormalizer().register("zero", "count", 0.0)


class TestDeliveryTimeNormalizer:
    def make(self):
        return DeliveryTimeNormalizer(
            {
                "ups-shop": DeliveryPolicy.CALENDAR_DAYS,
                "office-co": DeliveryPolicy.BUSINESS_DAYS,
                "fedex-like": DeliveryPolicy.CALENDAR_EXCEPT_SUNDAY,
            }
        )

    def test_two_day_delivery_means_different_things(self):
        normalizer = self.make()
        calendar = normalizer.normalize("ups-shop", "2 day delivery")
        business = normalizer.normalize("office-co", "2 day delivery")
        except_sunday = normalizer.normalize("fedex-like", "2 day delivery")
        assert calendar == pytest.approx(48.0)
        assert business == pytest.approx(48.0 * 7 / 5)
        assert except_sunday == pytest.approx(48.0 * 7 / 6)
        assert calendar < except_sunday < business

    def test_numeric_quote(self):
        assert self.make().normalize("ups-shop", 3) == 72.0

    def test_unknown_supplier_defaults_to_calendar(self):
        assert self.make().normalize("mystery", "1 day") == 24.0

    def test_register(self):
        normalizer = self.make()
        normalizer.register("new-co", DeliveryPolicy.BUSINESS_DAYS)
        assert normalizer.normalize("new-co", 5) == pytest.approx(120.0 * 7 / 5)

    def test_unparseable_quote_rejected(self):
        with pytest.raises(TransformError):
            self.make().normalize("ups-shop", "whenever")

"""Tests for the wrapper training session and the UDDI-like registry."""

import pytest

from repro.connect import (
    SupplierListing,
    SupplierRegistry,
    WrapperTrainingSession,
)
from repro.core import DataType, Field, Schema
from repro.core.errors import WrapperError


def render_page(records):
    rows = "".join(
        f"<tr><td class='s'>{r['sku']}</td><td class='n'>{r['name']}</td></tr>"
        for r in records
    )
    return f"<html><body><table>{rows}</table></body></html>"


RECORDS = [
    {"sku": "A-1", "name": "black ink"},
    {"sku": "A-2", "name": "blue ink"},
    {"sku": "A-3", "name": "hex bolt"},
]


class TestWrapperTrainingSession:
    def test_mark_then_accept(self):
        session = WrapperTrainingSession(("sku", "name"), render_page(RECORDS))
        proposal = session.mark_record(RECORDS[0])
        assert proposal.learned
        assert proposal.records == RECORDS
        wrapper = session.accept()
        assert wrapper.extract(render_page(RECORDS)) == RECORDS
        assert session.human_actions == 2  # one mark + one accept

    def test_accept_before_learning_rejected(self):
        session = WrapperTrainingSession(("sku",), render_page(RECORDS))
        with pytest.raises(WrapperError):
            session.accept()

    def test_mark_after_accept_rejected(self):
        session = WrapperTrainingSession(("sku", "name"), render_page(RECORDS))
        session.mark_record(RECORDS[0])
        session.accept()
        with pytest.raises(WrapperError):
            session.mark_record(RECORDS[1])

    def test_train_against_counts_human_cost(self):
        session = WrapperTrainingSession(("sku", "name"), render_page(RECORDS))
        wrapper = session.train_against(RECORDS)
        assert session.accepted
        assert session.human_actions == 2  # converged on the first mark
        assert wrapper.extract(render_page(RECORDS)) == RECORDS

    def test_train_against_nonconvergent_template_raises(self):
        # Disjunctive rows: the LR family cannot express the optional <em>.
        rows = []
        for i, r in enumerate(RECORDS * 3):
            decoration = " <em>(sale)</em>" if i % 2 == 0 else ""
            rows.append(
                f"<tr><td class='s'>{r['sku']}{decoration}</td>"
                f"<td class='n'>{r['name']}</td></tr>"
            )
        page = "<table>" + "".join(rows) + "</table>"
        truth = [dict(r) for r in RECORDS * 3]
        session = WrapperTrainingSession(("sku", "name"), page)
        with pytest.raises(WrapperError):
            session.train_against(truth, max_rounds=5)

    def test_empty_truth_rejected(self):
        session = WrapperTrainingSession(("sku",), render_page(RECORDS))
        with pytest.raises(WrapperError):
            session.train_against([])


def integrator_schema():
    return Schema(
        "catalog",
        (
            Field("sku", DataType.STRING),
            Field("name", DataType.STRING),
            Field("price", DataType.FLOAT),
            Field("qty", DataType.INTEGER),
        ),
    )


def make_registry():
    from repro.workbench import SynonymTable

    field_synonyms = SynonymTable()
    field_synonyms.add_group(["sku", "part_num", "part number"])
    registry = SupplierRegistry(field_synonyms=field_synonyms)
    registry.publish(
        SupplierListing(
            "acme", "acme.example", "http://acme.example/catalog", "scrape",
            fields=("sku", "name", "price", "qty"), layout_hint="table",
        )
    )
    registry.publish(
        SupplierListing(
            "paris-bureau", "pb.example", "http://pb.example/catalog", "scrape",
            fields=("part_num", "part_name", "unit_price", "stock_qty"),
            layout_hint="divs", currency="FRF", price_style="code-suffix",
        )
    )
    registry.publish(
        SupplierListing(
            "weird-co", "weird.example", "http://weird.example/feed", "file",
            fields=("zzz", "yyy"),
        )
    )
    return registry


class TestSupplierRegistry:
    def test_publish_and_listing(self):
        registry = make_registry()
        assert len(registry) == 3
        assert registry.listing("acme").layout_hint == "table"

    def test_unknown_listing_rejected(self):
        with pytest.raises(WrapperError):
            make_registry().listing("ghost")

    def test_empty_fields_rejected(self):
        with pytest.raises(WrapperError):
            SupplierRegistry().publish(
                SupplierListing("x", "x.example", "http://x.example", "file", ())
            )

    def test_withdraw(self):
        registry = make_registry()
        registry.withdraw("weird-co")
        assert len(registry) == 2
        registry.withdraw("ghost")  # no-op

    def test_discover_by_required_fields(self):
        registry = make_registry()
        found = registry.discover(required_fields={"sku", "price"})
        names = [listing.supplier for listing in found]
        assert "acme" in names
        assert "paris-bureau" in names  # approximate name match
        assert "weird-co" not in names

    def test_discover_by_access(self):
        registry = make_registry()
        assert [listing.supplier
                for listing in registry.discover(access="file")] == ["weird-co"]

    def test_enablement_plan_auto_for_exact_names(self):
        registry = make_registry()
        plan = registry.enablement_plan("acme", integrator_schema())
        assert plan.automatic
        assert plan.field_mapping == {
            "sku": "sku", "name": "name", "price": "price", "qty": "qty"
        }

    def test_enablement_plan_maps_renamed_fields(self):
        registry = make_registry()
        plan = registry.enablement_plan("paris-bureau", integrator_schema())
        mapping = plan.field_mapping
        review_targets = {s.source_code for s in plan.needs_review}
        # Every integrator field is either mapped or queued for review.
        assert set(mapping.values()) | review_targets == {
            "sku", "name", "price", "qty"
        }
        assert not plan.unmapped

    def test_enablement_plan_reports_gaps(self):
        registry = make_registry()
        plan = registry.enablement_plan("weird-co", integrator_schema())
        assert not plan.automatic
        assert set(plan.unmapped) | {s.source_code for s in plan.needs_review} == {
            "sku", "name", "price", "qty"
        }

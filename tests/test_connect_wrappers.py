"""Tests for generated supplier sites and the regex/DOM wrappers over them."""

import pytest

from repro.connect import (
    DomWrapper,
    RegexWrapper,
    SimulatedWeb,
    WebClient,
    WebSourceWrapper,
)
from repro.connect.sitegen import build_supplier_site, format_price
from repro.connect.source import Predicate, StaticSource
from repro.connect.wrapper import float_coercer, int_coercer
from repro.core import Table
from repro.core.errors import WrapperError
from repro.sim import SimClock


def make_products(n=60):
    return [
        {
            "sku": f"A-{i}",
            "name": f"widget {i}",
            "price": 1.0 + i,
            "currency": "USD",
            "qty": 10 * i,
            "description": f"a fine widget number {i}",
        }
        for i in range(n)
    ]


def make_site(layout="table", **kwargs):
    web = SimulatedWeb(SimClock())
    products = make_products()
    supplier = build_supplier_site("acme.example", products, layout=layout, **kwargs)
    web.register(supplier.site)
    return web, supplier, products


class TestPriceFormatting:
    def test_symbol_style(self):
        assert format_price(5.0, "USD", "symbol") == "$5.00"
        assert format_price(5.0, "FRF", "symbol") == "F5.00"

    def test_code_prefix_style(self):
        assert format_price(5.0, "USD", "code-prefix") == "USD 5.00"

    def test_code_suffix_uses_decimal_comma(self):
        assert format_price(5.5, "FRF", "code-suffix") == "5,50 FRF"

    def test_unknown_style_rejected(self):
        with pytest.raises(ValueError):
            format_price(1.0, "USD", "nope")


class TestSiteGeneration:
    def test_unknown_layout_rejected(self):
        with pytest.raises(ValueError):
            build_supplier_site("x.example", [], layout="spiral")

    def test_pagination_math(self):
        _, supplier, _ = make_site()
        assert supplier.page_count == 3  # 60 products / 25 per page

    def test_index_links_all_pages(self):
        web, supplier, _ = make_site()
        body = WebClient(web).get("http://acme.example/").body
        assert "page=3" in body

    def test_item_detail_page(self):
        web, _, _ = make_site()
        body = WebClient(web).get("http://acme.example/item/A-7").body
        assert "widget 7" in body

    def test_unknown_item_404(self):
        web, _, _ = make_site()
        assert WebClient(web).get("http://acme.example/item/NOPE").status == 404

    def test_availability_endpoint_is_live(self):
        web, _, products = make_site()
        client = WebClient(web)
        first = client.get("http://acme.example/api/availability?sku=A-3").body
        assert 'qty="30"' in first
        products[3]["qty"] = 1  # the last rooms sell out
        second = client.get("http://acme.example/api/availability?sku=A-3").body
        assert 'qty="1"' in second


class TestDomWrapper:
    def test_scrapes_table_layout(self):
        web, supplier, _ = make_site("table")
        wrapper = WebSourceWrapper(
            "acme",
            WebClient(web),
            supplier.catalog_url(),
            DomWrapper("tr.item", {"sku": "td.sku", "name": "td.name",
                                   "price": "td.price", "qty": "td.qty"}),
            coercers={"qty": int_coercer},
        )
        result = wrapper.fetch()
        assert len(result.table) == 60
        assert result.table.to_dicts()[0]["sku"] == "A-0"
        assert result.table.to_dicts()[5]["qty"] == 50

    def test_scrapes_divs_layout(self):
        web, supplier, _ = make_site("divs")
        wrapper = WebSourceWrapper(
            "acme",
            WebClient(web),
            supplier.catalog_url(),
            DomWrapper("div.product", {"sku": "b.sku", "name": "div.title",
                                       "price": "div.cost"}),
        )
        assert len(wrapper.fetch().table) == 60

    def test_scrapes_dl_layout(self):
        web, supplier, _ = make_site("dl")
        wrapper = WebSourceWrapper(
            "acme",
            WebClient(web),
            supplier.catalog_url(),
            DomWrapper("dl.catalog dt.sku", {"sku": "."}),
        )
        assert wrapper.fetch().table.column("sku")[:2] == ["A-0", "A-1"]

    def test_missing_selector_yields_empty_string(self):
        wrapper = DomWrapper("tr.item", {"ghost": "td.ghost"})
        assert wrapper.extract("<tr class='item'><td>x</td></tr>") == [{"ghost": ""}]

    def test_empty_field_selectors_rejected(self):
        with pytest.raises(WrapperError):
            DomWrapper("tr", {})


class TestRegexWrapper:
    def test_scrapes_with_named_groups(self):
        web, supplier, _ = make_site("table")
        pattern = (
            r"<td class='sku'>(?P<sku>[^<]+)</td>"
            r"<td class='name'>(?P<name>[^<]+)</td>"
            r"<td class='price'>(?P<price>[^<]+)</td>"
        )
        wrapper = WebSourceWrapper(
            "acme", WebClient(web), supplier.catalog_url(), RegexWrapper(pattern)
        )
        table = wrapper.fetch().table
        assert len(table) == 60
        assert table.to_dicts()[0]["price"] == "$1.00"

    def test_pattern_without_groups_rejected(self):
        with pytest.raises(WrapperError):
            RegexWrapper(r"<td>[^<]+</td>")


class TestWebSourceWrapper:
    def make_wrapper(self, web, supplier, **kwargs):
        return WebSourceWrapper(
            "acme",
            WebClient(web),
            supplier.catalog_url(),
            DomWrapper("tr.item", {"sku": "td.sku", "price": "td.price",
                                   "qty": "td.qty"}),
            coercers={"qty": int_coercer},
            **kwargs,
        )

    def test_fetch_cost_reflects_pages(self):
        web, supplier, _ = make_site()
        wrapper = self.make_wrapper(web, supplier)
        result = wrapper.fetch()
        # 3 catalog pages at 0.2s latency each.
        assert result.cost_seconds == pytest.approx(0.6)

    def test_predicates_filter_result(self):
        web, supplier, _ = make_site()
        wrapper = self.make_wrapper(web, supplier)
        result = wrapper.fetch([Predicate("qty", ">=", 500)])
        assert all(q >= 500 for q in result.table.column("qty"))
        assert len(result.table) == 10

    def test_schema_uses_coercer_types(self):
        web, supplier, _ = make_site()
        wrapper = self.make_wrapper(web, supplier)
        assert wrapper.schema.field_named("qty").dtype.value == "integer"
        assert wrapper.schema.field_named("sku").dtype.value == "string"

    def test_login_required_site(self):
        web, supplier, _ = make_site(requires_login=True)
        wrapper = self.make_wrapper(
            web, supplier,
            login=(supplier.login_url(), {"user": "buyer", "password": "secret"}),
        )
        assert len(wrapper.fetch().table) == 60

    def test_login_failure_raises(self):
        web, supplier, _ = make_site(requires_login=True)
        wrapper = self.make_wrapper(
            web, supplier,
            login=(supplier.login_url(), {"user": "buyer", "password": "wrong"}),
        )
        with pytest.raises(WrapperError):
            wrapper.fetch()

    def test_availability_tracks_site_state(self):
        web, supplier, _ = make_site()
        wrapper = self.make_wrapper(web, supplier)
        assert wrapper.is_available()
        supplier.site.up = False
        assert not wrapper.is_available()

    def test_volatile_content_seen_on_refetch(self):
        web, supplier, products = make_site()
        wrapper = self.make_wrapper(web, supplier)
        assert wrapper.fetch().table.to_dicts()[1]["qty"] == 10
        products[1]["qty"] = 0
        assert wrapper.fetch().table.to_dicts()[1]["qty"] == 0


class TestCoercers:
    @pytest.mark.parametrize(
        "text,expected",
        [("$5.00", 5.0), ("5,50 FRF", 5.5), ("USD 1,234.50", 1234.5), ("", None), ("n/a", None)],
    )
    def test_float_coercer(self, text, expected):
        assert float_coercer(text) == expected

    @pytest.mark.parametrize("text,expected", [("17", 17), ("1,234", 1234), ("", None)])
    def test_int_coercer(self, text, expected):
        assert int_coercer(text) == expected


class TestStaticSource:
    def test_fetch_and_filter(self):
        from repro.core import DataType, Field, Schema

        table = Table(
            Schema("t", (Field("a", DataType.INTEGER),)), [(1,), (2,), (3,)]
        )
        source = StaticSource("t", table)
        assert len(source.fetch().table) == 3
        assert len(source.fetch([Predicate("a", ">", 1)]).table) == 2
        assert source.estimated_rows() == 3

"""Unit tests for the simulated web: URLs, sites, client, cookies, redirects."""

import pytest

from repro.connect.simweb import (
    HttpResponse,
    SimulatedWeb,
    WebClient,
    WebSite,
    build_url,
    parse_url,
)
from repro.core.errors import SourceUnavailableError, WrapperError
from repro.sim import SimClock


class TestParseUrl:
    def test_full_url(self):
        parsed = parse_url("https://acme.example/catalog?page=2&sort=sku")
        assert parsed.scheme == "https"
        assert parsed.host == "acme.example"
        assert parsed.path == "/catalog"
        assert parsed.params == {"page": "2", "sort": "sku"}

    def test_bare_host_gets_root_path(self):
        parsed = parse_url("http://acme.example")
        assert parsed.path == "/"
        assert parsed.params == {}

    def test_missing_scheme_rejected(self):
        with pytest.raises(WrapperError):
            parse_url("acme.example/catalog")

    def test_missing_host_rejected(self):
        with pytest.raises(WrapperError):
            parse_url("http:///catalog")

    def test_build_url_round_trip(self):
        url = build_url("http", "h.example", "/a", {"x": "1"})
        parsed = parse_url(url)
        assert parsed.path == "/a"
        assert parsed.params == {"x": "1"}


def make_web():
    web = SimulatedWeb(SimClock())
    site = WebSite("shop.example", latency=0.5)

    @site.route("/")
    def home(request):
        return HttpResponse(body="<html><body>home</body></html>")

    @site.route("/greet")
    def greet(request):
        name = request.params.get("name", "anon")
        return HttpResponse(body=f"hello {name}")

    @site.route("/item/")
    def item(request):
        return HttpResponse(body=f"item page {request.url.path}")

    @site.route("/set-cookie")
    def set_cookie(request):
        response = HttpResponse(body="cookie set")
        response.set_cookies["token"] = "t-1"
        return response

    @site.route("/need-cookie")
    def need_cookie(request):
        if request.cookies.get("token") != "t-1":
            return HttpResponse.forbidden()
        return HttpResponse(body="secret")

    @site.route("/bounce")
    def bounce(request):
        return HttpResponse.redirect("/greet?name=redirected")

    @site.route("/loop")
    def loop(request):
        return HttpResponse.redirect("/loop")

    web.register(site)
    return web, site


class TestWebSiteRouting:
    def test_exact_route(self):
        web, _ = make_web()
        assert "home" in WebClient(web).get("http://shop.example/").body

    def test_query_params_reach_handler(self):
        web, _ = make_web()
        assert WebClient(web).get("http://shop.example/greet?name=mike").body == "hello mike"

    def test_prefix_route(self):
        web, _ = make_web()
        body = WebClient(web).get("http://shop.example/item/A-1").body
        assert "/item/A-1" in body

    def test_unknown_path_404(self):
        web, _ = make_web()
        assert WebClient(web).get("http://shop.example/nope").status == 404

    def test_unknown_host_raises(self):
        web, _ = make_web()
        with pytest.raises(SourceUnavailableError):
            WebClient(web).get("http://ghost.example/")

    def test_duplicate_host_rejected(self):
        web, _ = make_web()
        with pytest.raises(WrapperError):
            web.register(WebSite("shop.example"))

    def test_down_site_raises(self):
        web, site = make_web()
        site.up = False
        with pytest.raises(SourceUnavailableError) as excinfo:
            WebClient(web).get("http://shop.example/")
        assert excinfo.value.source == "shop.example"

    def test_requests_served_counted(self):
        web, site = make_web()
        client = WebClient(web)
        client.get("http://shop.example/")
        client.get("http://shop.example/greet")
        assert site.requests_served == 2


class TestHttpsPolicy:
    def test_https_only_site_rejects_http(self):
        web = SimulatedWeb(SimClock())
        site = WebSite("secure.example", https_only=True)
        site.add_route("/", lambda r: HttpResponse(body="ok"))
        web.register(site)
        client = WebClient(web)
        assert client.get("http://secure.example/").status == 403
        assert client.get("https://secure.example/").status == 200


class TestWebClient:
    def test_latency_charged_to_clock(self):
        web, _ = make_web()
        client = WebClient(web)
        client.get("http://shop.example/")
        client.get("http://shop.example/greet")
        assert web.clock.now() == pytest.approx(1.0)
        assert client.time_spent == pytest.approx(1.0)

    def test_cookies_stored_and_sent(self):
        web, _ = make_web()
        client = WebClient(web)
        assert client.get("http://shop.example/need-cookie").status == 403
        client.get("http://shop.example/set-cookie")
        assert client.get("http://shop.example/need-cookie").body == "secret"

    def test_cookie_jars_are_per_host(self):
        web, _ = make_web()
        other = WebSite("other.example")
        other.add_route("/", lambda r: HttpResponse(body=str(r.cookies)))
        web.register(other)
        client = WebClient(web)
        client.get("http://shop.example/set-cookie")
        assert "t-1" not in client.get("http://other.example/").body

    def test_redirects_followed(self):
        web, _ = make_web()
        response = WebClient(web).get("http://shop.example/bounce")
        assert response.body == "hello redirected"

    def test_redirect_loop_detected(self):
        web, _ = make_web()
        with pytest.raises(WrapperError):
            WebClient(web).get("http://shop.example/loop")

    def test_post_form_reaches_handler(self):
        web = SimulatedWeb(SimClock())
        site = WebSite("form.example")
        site.add_route("/submit", lambda r: HttpResponse(body=r.form.get("q", "")))
        web.register(site)
        assert WebClient(web).post("http://form.example/submit", {"q": "bolts"}).body == "bolts"

"""Edge-case tests for the distributed executor and SQL semantics."""

import pytest

from repro.core import DataType, Field, Money, Schema, Table
from repro.core.errors import QueryError
from repro.federation import FederatedEngine, FederationCatalog
from repro.sim import SimClock


def engine_for(schema, rows, fragments=2):
    clock = SimClock()
    catalog = FederationCatalog(clock)
    names = [catalog.make_site(f"s{i}").name for i in range(2)]
    placement = [[names[i % 2]] for i in range(fragments)]
    catalog.load_fragmented(Table(schema, rows, validate=False), fragments, placement)
    return FederatedEngine(catalog)


def parts_engine(rows):
    schema = Schema(
        "parts",
        (
            Field("sku", DataType.STRING),
            Field("price", DataType.FLOAT),
            Field("tag", DataType.STRING),
        ),
    )
    return engine_for(schema, rows)


class TestEmptyAndNullHandling:
    def test_empty_table_queries(self):
        engine = parts_engine([])
        assert len(engine.query("select * from parts").table) == 0
        assert engine.query("select count(*) as n from parts").table.to_dicts() == [
            {"n": 0}
        ]

    def test_aggregates_over_empty_groups(self):
        engine = parts_engine([])
        result = engine.query("select tag, count(*) as n from parts group by tag")
        assert len(result.table) == 0

    def test_sum_avg_of_all_nulls_is_null(self):
        engine = parts_engine([("a", None, "t"), ("b", None, "t")])
        result = engine.query(
            "select sum(price) as s, avg(price) as a, count(price) as c from parts"
        )
        assert result.table.to_dicts() == [{"s": None, "a": None, "c": 0}]

    def test_group_by_null_key(self):
        engine = parts_engine([("a", 1.0, None), ("b", 2.0, None), ("c", 3.0, "x")])
        result = engine.query(
            "select tag, count(*) as n from parts group by tag order by n desc"
        )
        assert result.table.to_dicts()[0] == {"tag": None, "n": 2}

    def test_order_by_nulls_first(self):
        engine = parts_engine([("a", 2.0, "t"), ("b", None, "t"), ("c", 1.0, "t")])
        result = engine.query("select sku from parts order by price")
        assert result.table.column("sku") == ["b", "c", "a"]

    def test_limit_zero(self):
        engine = parts_engine([("a", 1.0, "t")])
        assert len(engine.query("select * from parts limit 0").table) == 0

    def test_join_on_null_keys_never_matches(self):
        clock = SimClock()
        catalog = FederationCatalog(clock)
        catalog.make_site("s0")
        left = Table(
            Schema("l", (Field("k", DataType.STRING),)), [("x",), (None,)],
            validate=False,
        )
        right = Table(
            Schema("r", (Field("k2", DataType.STRING),)), [("x",), (None,)],
            validate=False,
        )
        catalog.load_fragmented(left, 1, [["s0"]])
        catalog.load_fragmented(right, 1, [["s0"]])
        engine = FederatedEngine(catalog)
        result = engine.query("select l.k from l join r on l.k = r.k2")
        assert result.table.column("k") == ["x"]


class TestTypesAndExpressions:
    def test_money_values_flow_through(self):
        schema = Schema(
            "priced", (Field("sku", DataType.STRING), Field("cost", DataType.MONEY))
        )
        engine = engine_for(schema, [("a", Money(5.0, "USD")), ("b", Money(1.0, "USD"))])
        result = engine.query("select sku, cost from priced order by sku")
        assert result.table.column("cost")[0] == Money(5.0, "USD")
        assert result.table.schema.field_named("cost").dtype is DataType.MONEY

    def test_min_max_over_money(self):
        schema = Schema(
            "priced", (Field("sku", DataType.STRING), Field("cost", DataType.MONEY))
        )
        engine = engine_for(schema, [("a", Money(5.0, "USD")), ("b", Money(1.0, "USD"))])
        result = engine.query("select min(cost) as lo, max(cost) as hi from priced")
        assert result.table.to_dicts() == [
            {"lo": Money(1.0, "USD"), "hi": Money(5.0, "USD")}
        ]

    def test_expression_only_select(self):
        engine = parts_engine([("a", 2.0, "t")])
        result = engine.query("select price * 10 + 1 as x from parts")
        assert result.table.column("x") == [21.0]

    def test_duplicate_output_names_uniquified(self):
        engine = parts_engine([("a", 2.0, "t")])
        result = engine.query("select sku, sku from parts")
        assert result.table.schema.field_names == ("sku", "sku_2")

    def test_distinct_multiple_columns(self):
        engine = parts_engine(
            [("a", 1.0, "x"), ("a", 1.0, "x"), ("a", 2.0, "x")]
        )
        result = engine.query("select distinct sku, price from parts")
        assert len(result.table) == 2

    def test_having_with_avg(self):
        engine = parts_engine(
            [("a", 1.0, "x"), ("b", 9.0, "x"), ("c", 2.0, "y"), ("d", 2.0, "y")]
        )
        result = engine.query(
            "select tag, avg(price) as ap from parts group by tag "
            "having avg(price) > 3"
        )
        assert result.table.to_dicts() == [{"tag": "x", "ap": 5.0}]

    def test_order_by_alias(self):
        engine = parts_engine([("a", 3.0, "t"), ("b", 1.0, "t")])
        result = engine.query("select sku, price as p from parts order by p")
        assert result.table.column("sku") == ["b", "a"]

    def test_fuzzy_in_select_list(self):
        engine = parts_engine([("a", 1.0, "black ink")])
        result = engine.query("select fuzzy(tag, 'ink black') as score from parts")
        assert result.table.column("score")[0] == pytest.approx(1.0)


class TestErrorPaths:
    def test_unknown_column_in_where(self):
        engine = parts_engine([("a", 1.0, "t")])
        with pytest.raises(QueryError):
            engine.query("select sku from parts where ghost = 1")

    def test_unknown_column_in_select(self):
        engine = parts_engine([("a", 1.0, "t")])
        with pytest.raises(QueryError):
            engine.query("select ghost from parts")

    def test_type_confused_comparison(self):
        engine = parts_engine([("a", 1.0, "t")])
        with pytest.raises(QueryError):
            engine.query("select sku from parts where price > 'abc'")

    def test_sum_star_rejected(self):
        engine = parts_engine([("a", 1.0, "t")])
        with pytest.raises(QueryError):
            engine.query("select sum(*) from parts")

    def test_aggregate_of_two_args_rejected(self):
        engine = parts_engine([("a", 1.0, "t")])
        with pytest.raises(QueryError):
            engine.query("select sum(price, price) from parts group by tag")

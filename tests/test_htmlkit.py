"""Unit tests for the tolerant HTML parser and DOM navigation."""

from repro.htmlkit import Comment, Element, TextNode, parse_html


class TestBasicParsing:
    def test_simple_nesting(self):
        doc = parse_html("<html><body><p>hello</p></body></html>")
        p = doc.find("p")
        assert p is not None
        assert p.get_text() == "hello"

    def test_attributes_double_single_and_unquoted(self):
        doc = parse_html('<a href="http://x" rel=\'nofollow\' target=_blank>link</a>')
        a = doc.find("a")
        assert a.get("href") == "http://x"
        assert a.get("rel") == "nofollow"
        assert a.get("target") == "_blank"

    def test_boolean_attribute(self):
        doc = parse_html("<input disabled>")
        assert doc.find("input").get("disabled") == ""

    def test_tag_and_attribute_names_lowercased(self):
        doc = parse_html('<DIV CLASS="Big">x</DIV>')
        div = doc.find("div")
        assert div is not None
        assert div.get("class") == "Big"

    def test_entities_decoded_in_text_and_attrs(self):
        doc = parse_html('<p title="a &amp; b">x &lt; y</p>')
        p = doc.find("p")
        assert p.get("title") == "a & b"
        assert p.get_text() == "x < y"

    def test_comments_preserved(self):
        doc = parse_html("<div><!-- marker --></div>")
        comments = [
            n for n in doc.find("div").iter_descendants() if isinstance(n, Comment)
        ]
        assert comments[0].text.strip() == "marker"

    def test_doctype_skipped(self):
        doc = parse_html("<!DOCTYPE html><html><body>x</body></html>")
        assert doc.find("html") is not None


class TestMalformedRecovery:
    def test_unclosed_tags_closed_at_eof(self):
        doc = parse_html("<div><p>dangling")
        assert doc.find("p").get_text() == "dangling"

    def test_stray_close_tag_ignored(self):
        doc = parse_html("<div></span>text</div>")
        assert doc.find("div").get_text() == "text"

    def test_void_elements_take_no_children(self):
        doc = parse_html("<p>a<br>b</p>")
        p = doc.find("p")
        assert p.get_text(separator=" ") == "a b"
        assert doc.find("br").children == []

    def test_self_closing_syntax(self):
        doc = parse_html("<div><img src='x.png'/><span>s</span></div>")
        assert doc.find("img").get("src") == "x.png"
        assert doc.find("span").get_text() == "s"

    def test_implicit_li_closing(self):
        doc = parse_html("<ul><li>one<li>two<li>three</ul>")
        items = doc.find_all("li")
        assert [li.get_text() for li in items] == ["one", "two", "three"]
        assert all(li.parent.tag == "ul" for li in items)

    def test_implicit_tr_td_closing(self):
        doc = parse_html("<table><tr><td>a<td>b<tr><td>c</table>")
        rows = doc.find_all("tr")
        assert len(rows) == 2
        assert [td.get_text() for td in rows[0].find_all("td")] == ["a", "b"]

    def test_script_content_is_raw_text(self):
        doc = parse_html("<script>if (a < b) { x(); }</script><p>after</p>")
        script = doc.find("script")
        assert "a < b" in script.get_text(strip=False)
        assert doc.find("p").get_text() == "after"

    def test_unterminated_script_consumes_rest(self):
        doc = parse_html("<script>var x = 1;")
        assert "var x = 1;" in doc.find("script").get_text(strip=False)

    def test_lone_left_angle_is_text(self):
        doc = parse_html("<p>5 < 6</p>")
        assert "<" in doc.find("p").get_text(separator=" ", strip=False)

    def test_empty_document(self):
        doc = parse_html("")
        assert doc.tag == "document"
        assert doc.children == []

    def test_mismatched_close_pops_to_match(self):
        doc = parse_html("<div><b><i>x</b>y</div>")
        div = doc.find("div")
        # </b> pops both <i> and <b>; "y" lands back in <div>.
        assert div.get_text(separator="|") == "x|y"


class TestNavigation:
    CATALOG = """
    <html><body>
      <table id="catalog" class="catalog wide">
        <tr class="item"><td class="sku">A-1</td><td class="price">$5.00</td></tr>
        <tr class="item"><td class="sku">A-2</td><td class="price">$7.50</td></tr>
      </table>
      <div id="footer">contact us</div>
    </body></html>
    """

    def test_find_all_by_tag(self):
        doc = parse_html(self.CATALOG)
        assert len(doc.find_all("tr")) == 2

    def test_find_all_by_class(self):
        doc = parse_html(self.CATALOG)
        assert len(doc.find_all("td", class_name="price")) == 2

    def test_find_all_by_attrs(self):
        doc = parse_html(self.CATALOG)
        assert doc.find_all("div", attrs={"id": "footer"})[0].get_text() == "contact us"

    def test_find_with_predicate(self):
        doc = parse_html(self.CATALOG)
        cell = doc.find("td", predicate=lambda e: "7.50" in e.get_text())
        assert cell.get_text() == "$7.50"

    def test_find_returns_none_when_absent(self):
        assert parse_html(self.CATALOG).find("video") is None

    def test_select_descendant_combinator(self):
        doc = parse_html(self.CATALOG)
        prices = doc.select("table.catalog tr td.price")
        assert [p.get_text() for p in prices] == ["$5.00", "$7.50"]

    def test_select_by_id(self):
        doc = parse_html(self.CATALOG)
        assert doc.select("#catalog")[0].tag == "table"

    def test_select_tag_with_id(self):
        doc = parse_html(self.CATALOG)
        assert doc.select("div#footer")[0].get_text() == "contact us"

    def test_select_star(self):
        doc = parse_html("<div><p class='x'>a</p><span class='x'>b</span></div>")
        assert len(doc.select("*.x")) == 2

    def test_classes_and_has_class(self):
        doc = parse_html(self.CATALOG)
        table = doc.find("table")
        assert table.classes == ["catalog", "wide"]
        assert table.has_class("wide")
        assert not table.has_class("narrow")

    def test_parents_are_wired(self):
        doc = parse_html(self.CATALOG)
        td = doc.find("td")
        assert td.parent.tag == "tr"
        assert td.parent.parent.tag == "table"

    def test_get_text_separator(self):
        doc = parse_html("<tr><td>a</td><td>b</td></tr>")
        assert doc.find("tr").get_text(separator=",") == "a,b"


class TestDomPrimitives:
    def test_append_sets_parent(self):
        parent = Element("div")
        child = parent.append(Element("span"))
        assert child.parent is parent

    def test_textnode_repr(self):
        assert "hi" in repr(TextNode("hi"))

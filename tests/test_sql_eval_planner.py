"""Tests for SQL expression evaluation and logical planning."""

import pytest

from repro.core.errors import QueryError
from repro.sql import (
    AggregateNode,
    FilterNode,
    JoinNode,
    LimitNode,
    ProjectNode,
    ScanNode,
    SortNode,
    build_plan,
    evaluate,
    parse_sql,
)
from repro.sql.expressions import like_to_regex
from repro.sql.planner import scans_in, split_conjuncts


def expr_of(text):
    return parse_sql(f"select * from t where {text}").where


def check(text, env, expected):
    assert evaluate(expr_of(text), env) == expected


class TestEvaluation:
    def test_comparisons(self):
        check("a > 1", {"a": 2}, True)
        check("a <= 1", {"a": 2}, False)
        check("a = 'x'", {"a": "x"}, True)
        check("a != 'x'", {"a": "y"}, True)

    def test_null_comparisons_are_false(self):
        check("a > 1", {"a": None}, False)
        check("a = 1", {"a": None}, False)
        check("a != 1", {"a": None}, True)

    def test_null_equality_with_null_literal(self):
        check("a = null", {"a": None}, True)

    def test_is_null(self):
        check("a is null", {"a": None}, True)
        check("a is not null", {"a": None}, False)

    def test_boolean_connectives(self):
        env = {"a": 1, "b": 2}
        check("a = 1 and b = 2", env, True)
        check("a = 1 and b = 3", env, False)
        check("a = 9 or b = 2", env, True)
        check("not a = 9", env, True)

    def test_arithmetic(self):
        check("a + b * 2 = 5", {"a": 1, "b": 2}, True)
        check("a / 2 = 3", {"a": 6}, True)

    def test_arithmetic_with_null_is_null(self):
        assert evaluate(expr_of("a + 1 = 2"), {"a": None}) is False

    def test_division_by_zero_rejected(self):
        with pytest.raises(QueryError):
            evaluate(expr_of("1 / a = 1"), {"a": 0})

    def test_like(self):
        check("name like '%ink%'", {"name": "black ink 30ml"}, True)
        check("name like 'black%'", {"name": "black ink"}, True)
        check("name like 'b_ack%'", {"name": "black ink"}, True)
        check("name like 'ink'", {"name": "black ink"}, False)
        check("name not like '%ink%'", {"name": "drill"}, True)

    def test_like_is_case_insensitive(self):
        check("name like '%INK%'", {"name": "Black Ink"}, True)

    def test_like_escapes_regex_chars(self):
        assert like_to_regex("a.b").fullmatch("a.b")
        assert not like_to_regex("a.b").fullmatch("axb")

    def test_in_and_between(self):
        check("sku in ('A', 'B')", {"sku": "B"}, True)
        check("sku not in ('A')", {"sku": "B"}, True)
        check("p between 1 and 10", {"p": 5}, True)
        check("p not between 1 and 10", {"p": 50}, True)

    def test_contains(self):
        check("d contains 'Fine Widget'", {"d": "a fine widget indeed"}, True)
        check("d contains 'x'", {"d": None}, False)

    def test_scalar_functions(self):
        check("upper(name) = 'INK'", {"name": "ink"}, True)
        check("length(name) = 3", {"name": "ink"}, True)
        check("coalesce(a, b, 9) = 9", {"a": None, "b": None}, True)
        check("round(p, 1) = 2.5", {"p": 2.45}, True)
        check("abs(x) = 4", {"x": -4}, True)

    def test_fuzzy_function(self):
        check("fuzzy(name, 'black ink') > 0.9", {"name": "ink, black"}, True)
        check("fuzzy(name, 'black ink') > 0.9", {"name": "steel beam"}, False)

    def test_match_function_fallback(self):
        check("match(d, 'fine widget')", {"d": "a fine widget"}, True)
        check("match(d, 'fine widget')", {"d": "a coarse widget"}, False)

    def test_qualified_env_lookup(self):
        check("p.x = 1", {"p.x": 1}, True)

    def test_unqualified_falls_back(self):
        check("x = 1", {"x": 1}, True)

    def test_unknown_column_raises(self):
        with pytest.raises(QueryError):
            evaluate(expr_of("ghost = 1"), {"a": 1})

    def test_unknown_function_raises(self):
        with pytest.raises(QueryError):
            evaluate(expr_of("nope(a) = 1"), {"a": 1})


FIELDS = {
    "p": {"sku", "name", "price", "supplier_id"},
    "s": {"id", "supplier", "country"},
}


class TestPlanner:
    def test_simple_select_plan_shape(self):
        plan = build_plan(parse_sql("select sku from parts p"), FIELDS)
        assert isinstance(plan, ProjectNode)
        assert isinstance(plan.child, ScanNode)

    def test_pushable_predicate_lands_on_scan(self):
        plan = build_plan(
            parse_sql("select sku from parts p where price > 10"), FIELDS
        )
        scan = scans_in(plan)[0]
        assert len(scan.pushdown) == 1
        assert scan.pushdown[0].column == "price"
        assert scan.pushdown[0].op == ">"
        assert not isinstance(plan.child, FilterNode)

    def test_flipped_literal_comparison_pushes(self):
        plan = build_plan(parse_sql("select sku from parts p where 10 < price"), FIELDS)
        assert scans_in(plan)[0].pushdown[0].op == ">"

    def test_unpushable_predicate_stays_residual(self):
        plan = build_plan(
            parse_sql("select sku from parts p where price > 10 or sku = 'A'"),
            FIELDS,
        )
        assert scans_in(plan)[0].pushdown == []
        assert isinstance(plan.child, FilterNode)

    def test_mixed_conjuncts_split(self):
        plan = build_plan(
            parse_sql(
                "select sku from parts p where price > 10 and length(name) > 3"
            ),
            FIELDS,
        )
        assert len(scans_in(plan)[0].pushdown) == 1
        assert isinstance(plan.child, FilterNode)

    def test_join_plan(self):
        plan = build_plan(
            parse_sql(
                "select p.sku, s.supplier from parts p "
                "join suppliers s on p.supplier_id = s.id "
                "where s.country = 'FR' and p.price < 5"
            ),
            FIELDS,
        )
        scans = {s.binding: s for s in scans_in(plan)}
        assert scans["s"].pushdown[0].column == "country"
        assert scans["p"].pushdown[0].column == "price"
        assert isinstance(plan, ProjectNode)
        assert isinstance(plan.child, JoinNode)

    def test_ambiguous_unqualified_column_not_pushed(self):
        fields = {"a": {"x"}, "b": {"x"}}
        plan = build_plan(
            parse_sql("select * from a join b on a.x = b.x where x = 1"), fields
        )
        assert all(not s.pushdown for s in scans_in(plan))

    def test_without_binding_fields_nothing_pushed(self):
        plan = build_plan(parse_sql("select sku from parts p where price > 1"))
        assert scans_in(plan)[0].pushdown == []
        assert isinstance(plan.child, FilterNode)

    def test_aggregate_plan(self):
        plan = build_plan(
            parse_sql(
                "select supplier_id, count(*) as n from parts p "
                "group by supplier_id having count(*) > 2 order by n desc limit 3"
            ),
            FIELDS,
        )
        assert isinstance(plan, LimitNode)
        assert isinstance(plan.child, SortNode)
        assert isinstance(plan.child.child, AggregateNode)

    def test_ungrouped_select_item_rejected(self):
        with pytest.raises(QueryError):
            build_plan(
                parse_sql("select name, count(*) from parts p group by supplier_id"),
                FIELDS,
            )

    def test_star_with_aggregate_rejected(self):
        with pytest.raises(QueryError):
            build_plan(parse_sql("select * from p group by x"), {"p": {"x"}})

    def test_having_without_group_rejected(self):
        statement = parse_sql("select sku from parts p where price > 1")
        statement.having = statement.where
        with pytest.raises(QueryError):
            build_plan(statement, FIELDS)

    def test_duplicate_binding_rejected(self):
        with pytest.raises(QueryError):
            build_plan(parse_sql("select * from a join a on a.x = a.x"), {"a": {"x"}})

    def test_split_conjuncts(self):
        where = parse_sql("select * from t where a = 1 and b = 2 and c = 3").where
        assert len(split_conjuncts(where)) == 3
        assert split_conjuncts(None) == []

"""Tests for transform-on-demand sources and the DB-API surface."""

import pytest

from repro.connect.source import LiveSource, Predicate
from repro.connect.transformed import PipelineSource
from repro.core import DataType, Field, Schema, Table
from repro.federation import FederatedEngine, FederationCatalog
from repro.federation.dbapi import InterfaceError, connect
from repro.federation.engine import LIVE_ONLY
from repro.sim import SimClock
from repro.workbench import CastColumn, FilterRows, Pipeline, RenameColumns


RAW_SCHEMA = Schema(
    "raw_feed",
    (
        Field("item", DataType.STRING),
        Field("price_text", DataType.STRING),
        Field("stock", DataType.STRING),
    ),
)


def make_state():
    return [
        {"item": "A-1", "price_text": "5.00", "stock": "10"},
        {"item": "A-2", "price_text": "6.50", "stock": "0"},
        {"item": "A-3", "price_text": "2.25", "stock": "4"},
    ]


def view_pipeline():
    return Pipeline(
        "clean",
        [
            RenameColumns({"item": "sku"}),
            CastColumn("price_text", DataType.FLOAT),
            RenameColumns({"price_text": "price"}),
            CastColumn("stock", DataType.INTEGER),
            FilterRows(lambda row: row["stock"] > 0, "in stock"),
        ],
    )


class TestPipelineSource:
    def make(self, state):
        base = LiveSource("feed", RAW_SCHEMA, lambda: list(state), cost_seconds=0.2)
        return PipelineSource("clean_feed", base, view_pipeline())

    def test_schema_comes_from_the_pipeline(self):
        source = self.make(make_state())
        assert source.schema.field_names == ("sku", "price", "stock")
        assert source.schema.field_named("price").dtype is DataType.FLOAT

    def test_fetch_transforms_on_demand(self):
        state = make_state()
        source = self.make(state)
        result = source.fetch()
        assert result.table.column("sku") == ["A-1", "A-3"]  # A-2 filtered
        assert result.table.column("price") == [5.0, 2.25]

    def test_view_is_live(self):
        state = make_state()
        source = self.make(state)
        state[1]["stock"] = "7"  # restock A-2
        assert source.fetch().table.column("sku") == ["A-1", "A-2", "A-3"]

    def test_predicates_apply_to_view_schema(self):
        source = self.make(make_state())
        result = source.fetch([Predicate("price", "<", 3.0)])
        assert result.table.column("sku") == ["A-3"]

    def test_lineage_reaches_through_the_view(self):
        source = self.make(make_state())
        source.fetch()
        assert source.last_lineage.explain("price")[0] == "source feed(price_text)"
        assert source.last_lineage.origin_of(1).row_index == 2  # A-3 was raw row 2

    def test_cost_includes_transform(self):
        source = self.make(make_state())
        assert source.estimated_cost() > 0.2

    def test_materialized_vs_on_demand_is_one_parameter(self):
        """The paper's data-independence claim, end to end."""
        state = make_state()
        clock = SimClock()
        catalog = FederationCatalog(clock)
        catalog.make_site("s0")
        catalog.register_external_table("clean_feed", self.make(state), "s0")
        engine = FederatedEngine(catalog)
        engine.create_materialized_view("clean_feed_mv", "clean_feed", "s0")

        state[1]["stock"] = "7"  # the world changes
        cached = engine.query("select sku from clean_feed", max_staleness=None)
        live = engine.query("select sku from clean_feed", max_staleness=LIVE_ONLY)
        assert "A-2" not in cached.table.column("sku")
        assert "A-2" in live.table.column("sku")


class TestDbApi:
    def make_connection(self):
        clock = SimClock()
        catalog = FederationCatalog(clock)
        names = [catalog.make_site(f"s{i}").name for i in range(2)]
        schema = Schema(
            "parts",
            (Field("sku", DataType.STRING), Field("price", DataType.FLOAT)),
        )
        table = Table(schema, [(f"A-{i}", float(i)) for i in range(10)])
        catalog.load_fragmented(table, 1, [names])
        return connect(FederatedEngine(catalog))

    def test_execute_and_fetchall(self):
        with self.make_connection() as connection:
            cursor = connection.cursor()
            cursor.execute("select sku, price from parts where price > 7 order by sku")
            assert cursor.fetchall() == [("A-8", 8.0), ("A-9", 9.0)]

    def test_qmark_parameters(self):
        cursor = self.make_connection().cursor()
        cursor.execute("select sku from parts where price > ? and sku != ?", (6, "A-9"))
        assert cursor.fetchall() == [("A-7",), ("A-8",)]

    def test_string_parameter_escaping(self):
        cursor = self.make_connection().cursor()
        cursor.execute("select sku from parts where sku = ?", ("it's",))
        assert cursor.fetchall() == []

    def test_placeholder_inside_literal_ignored(self):
        cursor = self.make_connection().cursor()
        cursor.execute("select sku from parts where sku = '?'")
        assert cursor.fetchall() == []

    def test_parameter_count_mismatch(self):
        cursor = self.make_connection().cursor()
        with pytest.raises(InterfaceError):
            cursor.execute("select sku from parts where price > ?", ())
        with pytest.raises(InterfaceError):
            cursor.execute("select sku from parts", (1,))

    def test_last_plan_and_report_exposed(self):
        cursor = self.make_connection().cursor()
        assert cursor.last_plan is None and cursor.last_report is None
        cursor.execute("select sku from parts where price > ?", (6,))
        assert cursor.last_plan is not None
        assert "parts" in cursor.last_plan.assignments
        report = cursor.last_report
        assert report is not None
        assert report.rows_returned == 3
        assert report.rows_fetched >= report.rows_returned
        assert report.rows_shipped <= report.rows_fetched
        assert report.operators is not None  # per-operator stats tree
        cursor.close()
        assert cursor.last_plan is None and cursor.last_report is None

    def test_description_and_rowcount(self):
        cursor = self.make_connection().cursor()
        assert cursor.description is None
        cursor.execute("select sku, price from parts")
        names = [d[0] for d in cursor.description]
        assert names == ["sku", "price"]
        assert cursor.rowcount == 10

    def test_fetchone_and_iteration(self):
        cursor = self.make_connection().cursor()
        cursor.execute("select sku from parts order by sku limit 3")
        assert cursor.fetchone() == ("A-0",)
        assert [row[0] for row in cursor] == ["A-1", "A-2"]
        assert cursor.fetchone() is None

    def test_fetchmany(self):
        cursor = self.make_connection().cursor()
        cursor.execute("select sku from parts order by sku")
        assert len(cursor.fetchmany(4)) == 4
        assert len(cursor.fetchmany(100)) == 6

    def test_closed_cursor_refuses(self):
        cursor = self.make_connection().cursor()
        cursor.close()
        with pytest.raises(InterfaceError):
            cursor.execute("select sku from parts")

    def test_closed_connection_refuses(self):
        connection = self.make_connection()
        connection.close()
        with pytest.raises(InterfaceError):
            connection.cursor()

    def test_fetch_before_execute_refuses(self):
        cursor = self.make_connection().cursor()
        with pytest.raises(InterfaceError):
            cursor.fetchall()

    def test_executemany_runs_last(self):
        cursor = self.make_connection().cursor()
        cursor.executemany(
            "select sku from parts where sku = ?", [("A-1",), ("A-2",)]
        )
        assert cursor.fetchall() == [("A-2",)]

    def test_commit_rollback_are_noops(self):
        connection = self.make_connection()
        connection.commit()
        connection.rollback()


class TestDbApiBindingFixes:
    """Regression tests for the driver's binding and tenancy surface."""

    def make_connection(self):
        return TestDbApi.make_connection(self)

    def make_failover_connection(self, degraded_ok=False, tenanted=False):
        """parts split over two RF=1 fragments, so one dead site degrades."""
        from repro.federation import WorkloadManager
        from repro.sim import EventLoop

        clock = SimClock()
        catalog = FederationCatalog(clock)
        names = [catalog.make_site(f"s{i}").name for i in range(2)]
        schema = Schema(
            "parts",
            (Field("sku", DataType.STRING), Field("price", DataType.FLOAT)),
        )
        table = Table(schema, [(f"A-{i}", float(i)) for i in range(10)])
        catalog.load_fragmented(table, 2, [[names[0]], [names[1]]])
        engine = FederatedEngine(catalog)
        if tenanted:
            manager = WorkloadManager(engine, EventLoop(clock))
            connection = connect(
                engine, workload=manager, tenant="acme", degraded_ok=degraded_ok
            )
        else:
            connection = connect(engine, degraded_ok=degraded_ok)
        return connection, engine

    # -- placeholder scanning (comments, quoted identifiers) ---------------

    def test_placeholder_inside_comment_not_substituted(self):
        cursor = self.make_connection().cursor()
        cursor.execute(
            "select sku from parts where price > ? -- is ? expensive\n"
            "order by sku",
            (8,),
        )
        assert cursor.fetchall() == [("A-9",)]

    def test_bind_leaves_comments_and_quoted_identifiers_alone(self):
        from repro.federation.dbapi import _bind

        assert (
            _bind("select a from t where b = ? -- b = ?", ("x",))
            == "select a from t where b = 'x' -- b = ?"
        )
        assert (
            _bind('select "a?b" from t where c = ?', (1,))
            == 'select "a?b" from t where c = 1'
        )
        assert (
            _bind("select a from t where b = 'it''s ?' and c = ?", (2,))
            == "select a from t where b = 'it''s ?' and c = 2"
        )

    def test_like_placeholder_binds_textually(self):
        # LIKE patterns cannot hold a placeholder in the grammar, so the
        # driver falls back to comment/escape-aware textual binding.
        cursor = self.make_connection().cursor()
        cursor.execute("select sku from parts where sku like ?", ("A-1%",))
        assert cursor.fetchall() == [("A-1",)]

    # -- unbindable values -------------------------------------------------

    def test_non_finite_floats_rejected(self):
        cursor = self.make_connection().cursor()
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(InterfaceError):
                cursor.execute("select sku from parts where price > ?", (bad,))
            # The textual-fallback path rejects them identically.
            with pytest.raises(InterfaceError):
                cursor.execute("select sku from parts where sku like ?", (bad,))

    def test_bytes_rejected(self):
        cursor = self.make_connection().cursor()
        for bad in (b"blob", bytearray(b"blob"), memoryview(b"blob")):
            with pytest.raises(InterfaceError):
                cursor.execute("select sku from parts where sku = ?", (bad,))

    def test_finite_floats_still_bind(self):
        cursor = self.make_connection().cursor()
        cursor.execute("select sku from parts where price = ?", (3.0,))
        assert cursor.fetchall() == [("A-3",)]

    # -- executemany with an empty sequence --------------------------------

    def test_executemany_empty_sequence_resets_result(self):
        cursor = self.make_connection().cursor()
        cursor.execute("select sku from parts where sku = ?", ("A-1",))
        assert cursor.rowcount == 1
        cursor.executemany("select sku from parts where sku = ?", [])
        # No stale rows from the earlier statement are fetchable.
        with pytest.raises(InterfaceError):
            cursor.fetchall()
        assert cursor.rowcount == -1
        assert cursor.last_plan is None and cursor.last_report is None

    def test_executemany_empty_on_closed_cursor_still_refuses(self):
        cursor = self.make_connection().cursor()
        cursor.close()
        with pytest.raises(InterfaceError):
            cursor.executemany("select sku from parts where sku = ?", [])

    # -- degraded answers through the driver -------------------------------

    def kill_first_fragment(self, engine):
        fragment = engine.catalog.entry("parts").fragments[0]
        for name in fragment.replica_sites():
            engine.catalog.site(name).up = False

    def test_degraded_ok_direct_path(self):
        connection, engine = self.make_failover_connection(degraded_ok=True)
        self.kill_first_fragment(engine)
        cursor = connection.cursor()
        cursor.execute("select sku from parts")
        assert cursor.last_report.degraded
        assert 0.0 < cursor.last_report.completeness < 1.0
        assert 0 < cursor.rowcount < 10

    def test_degraded_ok_tenanted_path(self):
        connection, engine = self.make_failover_connection(
            degraded_ok=True, tenanted=True
        )
        self.kill_first_fragment(engine)
        cursor = connection.cursor()
        cursor.execute("select sku from parts")
        assert cursor.last_report.degraded
        assert cursor.last_report.tenant == "acme"

    def test_without_degraded_ok_partial_failure_raises(self):
        from repro.core.errors import PartialFailureError

        for tenanted in (False, True):
            connection, engine = self.make_failover_connection(
                degraded_ok=False, tenanted=tenanted
            )
            self.kill_first_fragment(engine)
            with pytest.raises(PartialFailureError):
                connection.cursor().execute("select sku from parts")

    # -- the per-connection plan cache -------------------------------------

    def test_repeated_statements_plan_once(self):
        connection = self.make_connection()
        cursor = connection.cursor()
        for threshold in (2, 4, 6, 8):
            cursor.execute("select sku from parts where price > ?", (threshold,))
        assert connection._plan_cache.misses == 1
        assert connection._plan_cache.hits == 3

    def test_prepared_and_textual_paths_answer_identically(self):
        prepared_cursor = self.make_connection().cursor()
        prepared_cursor.execute(
            "select sku from parts where price > ? order by sku", (6,)
        )
        textual = self.make_connection().cursor()
        textual.execute("select sku from parts where price > 6 order by sku")
        assert prepared_cursor.fetchall() == textual.fetchall()

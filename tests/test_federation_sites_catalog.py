"""Tests for sites, the network model and the federation catalog."""

import pytest

from repro.connect.source import Predicate, StaticSource
from repro.core import DataType, Field, Schema, Table
from repro.core.errors import QueryError, SourceUnavailableError
from repro.federation import FederationCatalog, Network, Site
from repro.sim import SimClock


def parts_schema():
    return Schema(
        "parts",
        (
            Field("sku", DataType.STRING),
            Field("name", DataType.STRING),
            Field("qty", DataType.INTEGER),
        ),
    )


def parts_table(n=10):
    return Table(parts_schema(), [(f"A-{i}", f"part {i}", i) for i in range(n)])


class TestSite:
    def make(self, clock=None):
        clock = clock or SimClock()
        site = Site("s1", clock, cpu_seconds_per_row=0.001)
        site.host(StaticSource("parts", parts_table(), cost_seconds=0.1))
        return clock, site

    def test_hosting(self):
        _, site = self.make()
        assert site.hosts("parts")
        assert site.hosted_names == ["parts"]
        site.unhost("parts")
        assert not site.hosts("parts")

    def test_missing_source_raises(self):
        _, site = self.make()
        with pytest.raises(SourceUnavailableError):
            site.source("ghost")

    def test_execute_scan_returns_work_and_delay(self):
        _, site = self.make()
        result, work, delay = site.execute_scan("parts")
        assert len(result.table) == 10
        assert work == pytest.approx(0.1 + 10 * 0.001)
        assert delay == 0.0

    def test_scan_with_predicates(self):
        _, site = self.make()
        result, _, _ = site.execute_scan("parts", [Predicate("qty", ">=", 8)])
        assert len(result.table) == 2

    def test_down_site_refuses(self):
        _, site = self.make()
        site.up = False
        with pytest.raises(SourceUnavailableError):
            site.execute_scan("parts")

    def test_backlog_accumulates_and_drains(self):
        clock, site = self.make()
        site.enqueue(2.0)
        assert site.backlog() == pytest.approx(2.0)
        clock.advance(0.5)
        assert site.backlog() == pytest.approx(1.5)
        clock.advance(10.0)
        assert site.backlog() == 0.0

    def test_second_enqueue_waits_behind_first(self):
        _, site = self.make()
        assert site.enqueue(1.0) == 0.0
        assert site.enqueue(1.0) == pytest.approx(1.0)

    def test_busy_seconds_is_lifetime_total(self):
        clock, site = self.make()
        site.enqueue(1.0)
        clock.advance(100)
        site.enqueue(2.0)
        assert site.busy_seconds == pytest.approx(3.0)

    def test_price_rises_with_load(self):
        _, site = self.make()
        quote = site.quote_scan("parts")
        idle_price = site.price_quote(quote)
        site.enqueue(5.0)
        busy_quote = site.quote_scan("parts")
        assert site.price_quote(busy_quote) > idle_price

    def test_quote_does_not_execute(self):
        _, site = self.make()
        site.quote_scan("parts")
        assert site.busy_seconds == 0.0


class TestNetwork:
    def test_local_transfer_free(self):
        assert Network().transfer_seconds("a", "a", 10_000) == 0.0

    def test_remote_transfer_latency_plus_rows(self):
        network = Network(base_latency=0.1, seconds_per_row=0.001)
        assert network.transfer_seconds("a", "b", 100) == pytest.approx(0.2)

    def test_pair_override_is_symmetric(self):
        network = Network(base_latency=0.1)
        network.set_latency("a", "b", 0.5)
        assert network.latency("b", "a") == 0.5
        assert network.latency("a", "c") == 0.1

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            Network().set_latency("a", "b", -1)


class TestCatalog:
    def make(self):
        catalog = FederationCatalog(SimClock())
        for name in ("s0", "s1", "s2"):
            catalog.make_site(name)
        return catalog

    def test_site_registration(self):
        catalog = self.make()
        assert catalog.site("s0").name == "s0"
        with pytest.raises(QueryError):
            catalog.site("ghost")
        with pytest.raises(QueryError):
            catalog.make_site("s0")

    def test_up_sites_excludes_down(self):
        catalog = self.make()
        catalog.site("s1").up = False
        assert {s.name for s in catalog.up_sites()} == {"s0", "s2"}

    def test_load_fragmented_places_replicas(self):
        catalog = self.make()
        entry = catalog.load_fragmented(
            parts_table(10), 2, [["s0", "s1"], ["s1", "s2"]]
        )
        assert len(entry.fragments) == 2
        assert entry.fragments[0].replica_sites() == ["s0", "s1"]
        assert entry.estimated_rows() == 10
        # Round-robin dealing balances fragments.
        assert entry.fragments[0].estimated_rows == 5

    def test_fragment_data_served_from_each_replica(self):
        catalog = self.make()
        entry = catalog.load_fragmented(parts_table(10), 2, [["s0", "s1"], ["s2"]])
        fragment = entry.fragments[0]
        for site_name in fragment.replica_sites():
            result, _, _ = catalog.site(site_name).execute_scan(
                fragment.replicas[site_name]
            )
            assert len(result.table) == 5

    def test_placement_count_mismatch_rejected(self):
        catalog = self.make()
        with pytest.raises(QueryError):
            catalog.load_fragmented(parts_table(), 2, [["s0"]])

    def test_duplicate_table_rejected(self):
        catalog = self.make()
        catalog.load_fragmented(parts_table(), 1, [["s0"]])
        with pytest.raises(QueryError):
            catalog.create_table("parts", parts_schema())

    def test_register_external_table(self):
        catalog = self.make()
        source = StaticSource("hotel_feed", parts_table(4))
        entry = catalog.register_external_table("hotels", source, "s0")
        assert entry.estimated_rows() == 4
        assert catalog.site("s0").hosts("hotels/f0")

    def test_drop_replica(self):
        catalog = self.make()
        entry = catalog.load_fragmented(parts_table(), 1, [["s0", "s1"]])
        fragment = entry.fragments[0]
        catalog.drop_replica(fragment, "s0")
        assert fragment.replica_sites() == ["s1"]
        assert not catalog.site("s0").hosts("parts/f0")

    def test_binding_fields(self):
        catalog = self.make()
        catalog.load_fragmented(parts_table(), 1, [["s0"]])
        fields = catalog.binding_fields({"p": "parts"})
        assert fields == {"p": {"sku", "name", "qty"}}
        with pytest.raises(QueryError):
            catalog.binding_fields({"x": "ghost"})

    def test_text_index_registration(self):
        catalog = self.make()
        data = parts_table(5)
        catalog.load_fragmented(data, 1, [["s0"]])
        index = catalog.build_text_index("parts", "name", data, "sku")
        assert index.document_count == 5
        entry = catalog.entry("parts")
        assert entry.text_column == "name"
        assert entry.key_column == "sku"

"""Tests for content-hashed stage artifacts and in-flight stage sharing.

Covers the canonical stage hash (alias-insensitivity, catalog-version
keying), the ArtifactStore's economy (admission, benefit eviction, TTL,
staleness bounds), the load-bearing correctness property -- an artifact
hit, an in-flight join and a cold recompute all return bit-identical
rows -- write-driven invalidation (a base-table update or a repartition
makes stale artifacts unreachable), the workload manager's in-flight
subscription protocol, and the fault-injection path: a producer cancelled
mid-flight falls its subscribers back to independent execution.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DataType, Field, Schema, Table
from repro.federation import (
    ArtifactStore,
    FederatedEngine,
    FederationCatalog,
    WorkloadManager,
)
from repro.federation.artifacts import StageOutput, StagePayload, stage_specs
from repro.federation.engine import LIVE_ONLY
from repro.federation.workload import QueryState
from repro.sim import EventLoop, SimClock
from repro.sql.parser import parse_sql
from repro.sql.planner import build_plan
from repro.sql.rewrite import (
    AggregateSplitting,
    ProjectionPruning,
    RewritePipeline,
    SiteFilterPushdown,
)


def build_federation(sites=3, fragments=6, rows_per_fragment=20, **site_kwargs):
    """A small replicated federation: ``items(k, v)`` with RF=2 placement."""
    catalog = FederationCatalog(SimClock())
    site_names = [f"s{i}" for i in range(sites)]
    for name in site_names:
        catalog.make_site(name, **site_kwargs)
    schema = Schema(
        "items", (Field("k", DataType.STRING), Field("v", DataType.INTEGER))
    )
    total = fragments * rows_per_fragment
    table = Table(schema, [(f"k{i:04d}", i) for i in range(total)])
    placement = [
        [site_names[i % sites], site_names[(i + 1) % sites]]
        for i in range(fragments)
    ]
    catalog.load_fragmented(table, fragments, placement)
    return catalog


def make_engine(artifacts=True, **store_kwargs):
    catalog = build_federation()
    store = (
        ArtifactStore(catalog.clock, **store_kwargs) if artifacts else None
    )
    engine = FederatedEngine(catalog, artifacts=store)
    return catalog, engine, store


def logical_plan(catalog, sql):
    """Parse + rewrite one statement the way the engine does."""
    statement = parse_sql(sql)
    bindings = {statement.table.binding: statement.table.name}
    for join in statement.joins:
        bindings[join.table.binding] = join.table.name
    binding_fields = catalog.binding_fields(bindings)
    plan = build_plan(statement, binding_fields)
    pipeline = RewritePipeline(
        [
            SiteFilterPushdown(binding_fields),
            ProjectionPruning(binding_fields),
            AggregateSplitting(),
        ]
    )
    return pipeline.run(plan)


def stage_key_of(catalog, store, sql):
    plan = logical_plan(catalog, sql)
    specs = stage_specs(plan)
    assert len(specs) == 1
    spec = next(iter(specs.values()))
    return store.stage_key(catalog, spec.scan, spec.agg)


class TestStageHash:
    def test_alias_spellings_collide(self):
        catalog = build_federation()
        store = ArtifactStore(catalog.clock)
        bare = stage_key_of(catalog, store, "select v from items where v < 5")
        aliased = stage_key_of(
            catalog, store, "select i.v from items i where i.v < 5"
        )
        assert bare == aliased

    def test_different_predicates_do_not_collide(self):
        catalog = build_federation()
        store = ArtifactStore(catalog.clock)
        a = stage_key_of(catalog, store, "select v from items where v < 5")
        b = stage_key_of(catalog, store, "select v from items where v < 6")
        assert a != b

    def test_aggregate_spec_is_part_of_the_hash(self):
        catalog = build_federation()
        store = ArtifactStore(catalog.clock)
        rows = stage_key_of(catalog, store, "select v from items where v < 5")
        agg = stage_key_of(
            catalog, store, "select count(*) from items where v < 5"
        )
        assert rows != agg

    def test_catalog_version_is_the_second_key_half(self):
        catalog = build_federation()
        store = ArtifactStore(catalog.clock)
        sql = "select count(*) from items"
        before = stage_key_of(catalog, store, sql)
        catalog.notify_table_updated("items")
        after = stage_key_of(catalog, store, sql)
        assert before[0] == after[0]  # same content digest
        assert before[1] != after[1]  # different version half


def make_output(key, rows=5, table_name="items", fetch_seconds=1.0, at=0.0):
    payload = StagePayload(
        kind="rows", fields=("v",), rows=[(i,) for i in range(rows)]
    )
    return StageOutput(
        key=key,
        table_name=table_name,
        payload=payload,
        rows_saved=rows,
        bytes_saved=rows * 8,
        fetch_seconds=fetch_seconds,
        fetched_at=at,
    )


class TestStoreLifecycle:
    def test_inflight_commits_after_completion_time(self):
        clock = SimClock()
        store = ArtifactStore(clock)
        key = ("abc", 1)
        assert store.begin_stage(make_output(key), completes_at=10.0)
        # Before the producer completes: a join, not a hit.
        artifact, wait, joined = store.acquire(key)
        assert joined and wait == pytest.approx(10.0)
        assert len(store) == 0
        clock.advance(10.0)
        artifact, wait, joined = store.acquire(key)
        assert not joined and wait == 0.0
        assert len(store) == 1 and store.published == 1

    def test_first_producer_wins(self):
        store = ArtifactStore(SimClock())
        key = ("abc", 1)
        assert store.begin_stage(make_output(key), completes_at=5.0)
        assert not store.begin_stage(make_output(key), completes_at=6.0)

    def test_oversized_stage_rejected(self):
        store = ArtifactStore(SimClock(), max_rows=3)
        assert not store.begin_stage(make_output(("k", 1), rows=5), 0.0)
        assert store.rejected == 1 and not store.inflight_keys()

    def test_lowest_benefit_evicted_first(self):
        clock = SimClock()
        store = ArtifactStore(clock, max_rows=8)
        cheap = make_output(("cheap", 1), rows=5, fetch_seconds=0.01)
        dear = make_output(("dear", 1), rows=5, fetch_seconds=5.0)
        store.begin_stage(cheap, completes_at=0.0)
        store.begin_stage(dear, completes_at=0.0)
        clock.advance(1.0)
        store._sweep()
        assert store.evictions == 1
        assert store.acquire(("dear", 1))[2] is False
        assert store.acquire(("cheap", 1)) is None

    def test_store_ttl_reclaims(self):
        clock = SimClock()
        store = ArtifactStore(clock, max_age_seconds=5.0)
        store.begin_stage(make_output(("k", 1), at=0.0), completes_at=0.0)
        clock.advance(1.0)
        assert store.acquire(("k", 1)) is not None
        clock.advance(10.0)
        assert store.acquire(("k", 1)) is None
        assert store.evictions == 1

    def test_per_call_staleness_bound(self):
        clock = SimClock()
        store = ArtifactStore(clock)
        store.begin_stage(make_output(("k", 1), at=0.0), completes_at=0.0)
        clock.advance(10.0)
        assert store.acquire(("k", 1), max_staleness=5.0) is None
        assert store.acquire(("k", 1), max_staleness=50.0) is not None

    def test_live_only_never_served(self):
        store = ArtifactStore(SimClock())
        store.begin_stage(make_output(("k", 1)), completes_at=0.0)
        assert store.acquire(("k", 1), max_staleness=LIVE_ONLY) is None

    def test_invalidate_table_drops_committed_and_inflight(self):
        clock = SimClock()
        store = ArtifactStore(clock)
        store.begin_stage(make_output(("done", 1)), completes_at=0.0)
        clock.advance(1.0)
        store._sweep()
        store.begin_stage(make_output(("flying", 1)), completes_at=99.0)
        dropped = store.invalidate_table("items")
        assert dropped == 2
        assert len(store) == 0 and not store.inflight_keys()
        assert store.invalidations == 2


AGG_SQL = "select count(*), sum(v) from items where v < 77"
ROWS_SQL = "select k, v from items where v < 33"


class TestEngineReuse:
    @pytest.mark.parametrize("sql", [AGG_SQL, ROWS_SQL])
    def test_hit_is_bit_identical_and_cheaper(self, sql):
        _, control_engine, _ = make_engine(artifacts=False)
        cold = control_engine.query(sql)

        _, engine, store = make_engine()
        first = engine.query(sql)
        second = engine.query(sql)
        assert second.table.rows == first.table.rows == cold.table.rows
        assert store.hits == 1
        assert second.report.artifact_hits == 1
        assert second.report.rows_fetched == 0
        assert second.report.bytes_shipped == 0
        assert second.report.artifact_rows_saved == first.report.rows_fetched

    def test_alias_spelling_still_hits(self):
        _, engine, store = make_engine()
        first = engine.query("select count(*) from items where v < 50")
        second = engine.query(
            "select count(*) from items i where i.v < 50"
        )
        assert second.table.rows == first.table.rows
        assert store.hits == 1

    def test_live_only_bypasses_artifacts(self):
        _, engine, store = make_engine()
        engine.query(AGG_SQL)
        live = engine.query(AGG_SQL, max_staleness=LIVE_ONLY)
        assert live.report.artifact_hits == 0
        assert live.report.rows_fetched > 0
        assert store.hits == 0

    def test_prepared_statements_reuse_across_executions(self):
        _, engine, store = make_engine()
        prepared = engine.prepare("select count(*) from items where v < ?")
        first = engine.execute(prepared, (40,))
        again = engine.execute(prepared, (40,))
        other = engine.execute(prepared, (90,))
        assert again.table.rows == first.table.rows
        assert again.report.artifact_hits == 1
        # A different binding is a different stage: no false sharing.
        assert other.report.artifact_hits == 0
        assert other.table.rows == [(90,)]

    def test_explain_analyze_shows_artifact_reuse(self):
        _, engine, _ = make_engine()
        engine.query(AGG_SQL)
        rendered = engine.render_analyze(engine.query(AGG_SQL))
        assert "artifact reuse: hits 1" in rendered

    @settings(max_examples=12, deadline=None)
    @given(bound=st.integers(min_value=0, max_value=120))
    def test_property_hit_matches_cold_recompute(self, bound):
        sql = f"select k, v from items where v < {bound}"
        _, control_engine, _ = make_engine(artifacts=False)
        cold = control_engine.query(sql)
        _, engine, store = make_engine()
        warmup = engine.query(sql)
        hit = engine.query(sql)
        assert warmup.table.rows == cold.table.rows
        assert hit.table.rows == cold.table.rows
        assert store.hits == 1


class TestInvalidation:
    def test_write_makes_artifacts_unreachable(self):
        catalog, engine, store = make_engine()
        engine.query(AGG_SQL)
        engine.query(AGG_SQL)
        assert store.hits == 1
        catalog.notify_table_updated("items")
        assert len(store) == 0  # dropped by the update listener
        after = engine.query(AGG_SQL)
        assert after.report.artifact_hits == 0
        assert after.report.rows_fetched > 0

    def test_repartition_makes_artifacts_unreachable(self):
        catalog, engine, store = make_engine()
        engine.query(AGG_SQL)
        # A replica placement change bumps the catalog version without
        # firing the update listeners: the stored artifact survives but
        # its key's version half can never be constructed again.
        fragment = catalog.entry("items").fragments[0]
        victim = sorted(fragment.replicas)[0]
        catalog.drop_replica(fragment, victim)
        store._sweep()
        assert len(store) >= 1
        after = engine.query(AGG_SQL)
        assert after.report.artifact_hits == 0
        assert after.report.rows_fetched > 0


def make_manager(max_in_flight=4, artifacts=True, **store_kwargs):
    catalog = build_federation()
    store = (
        ArtifactStore(catalog.clock, **store_kwargs) if artifacts else None
    )
    engine = FederatedEngine(catalog, artifacts=store)
    loop = EventLoop(catalog.clock)
    manager = WorkloadManager(engine, loop, max_in_flight=max_in_flight)
    return catalog, engine, loop, manager, store


class TestInFlightSharing:
    def test_concurrent_identical_stage_joins(self):
        _, _, _, manager, store = make_manager()
        producer = manager.submit(AGG_SQL, tenant="a")
        joiner = manager.submit(AGG_SQL, tenant="b")
        assert store.joins == 1
        assert joiner in store._inflight[producer._stage_keys[0]].subscribers
        manager.drain()
        assert producer.result().table.rows == joiner.result().table.rows
        report = joiner.result().report
        assert report.artifact_joins == 1
        assert report.rows_fetched == 0 and report.bytes_shipped == 0
        # The joiner waited for the producer's stage: it cannot finish first.
        assert joiner.finished_at >= producer.finished_at

    def test_join_charges_the_remaining_wait(self):
        _, _, _, manager, _ = make_manager()
        producer = manager.submit(AGG_SQL)
        joiner = manager.submit(AGG_SQL)
        manager.drain()
        assert (
            joiner.result().report.response_seconds
            >= producer.result().report.response_seconds
        )

    def test_cancelled_producer_falls_subscribers_back(self):
        _, _, _, manager, store = make_manager()
        producer = manager.submit(AGG_SQL, tenant="a")
        joiner = manager.submit(AGG_SQL, tenant="b")
        assert store.joins == 1
        assert manager.cancel(producer)
        assert producer.state is QueryState.FAILED
        assert store.aborts == 1 and store.fallbacks == 1
        manager.drain()
        assert joiner.state is QueryState.COMPLETED
        report = joiner.result().report
        # The fallback recomputed independently: real site rows, no reuse.
        assert report.artifact_joins == 0
        assert report.rows_fetched > 0
        _, control_engine, _ = make_engine(artifacts=False)
        assert (
            joiner.result().table.rows
            == control_engine.query(AGG_SQL).table.rows
        )

    def test_fallback_publishes_nothing(self):
        _, _, _, manager, store = make_manager()
        producer = manager.submit(AGG_SQL)
        joiner = manager.submit(AGG_SQL)
        manager.cancel(producer)
        manager.drain(joiner)
        assert not store.inflight_keys()
        assert len(store) == 0  # the fallback never re-registers the stage

    def test_cancel_queued_query(self):
        _, _, _, manager, _ = make_manager(max_in_flight=1)
        running = manager.submit(AGG_SQL)
        queued = manager.submit(AGG_SQL)
        assert queued.state is QueryState.QUEUED
        assert manager.cancel(queued)
        assert queued.state is QueryState.FAILED
        manager.drain(running)
        assert running.state is QueryState.COMPLETED

    def test_completed_producer_commits_for_later_queries(self):
        _, engine, loop, manager, store = make_manager()
        first = manager.submit(AGG_SQL)
        manager.drain()
        later = manager.submit(AGG_SQL)
        manager.drain()
        assert later.result().report.artifact_hits == 1
        assert later.result().table.rows == first.result().table.rows
        assert store.published == 1

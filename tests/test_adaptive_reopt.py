"""Adaptive mid-query re-optimization (DESIGN §5i): triggers, migration,
budget/hysteresis, workload-manager mid-flight replanning, and the
bit-identity property that makes adaptivity safe."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DataType, Field, Schema, Table
from repro.federation import (
    FailureInjector,
    FederatedEngine,
    FederationCatalog,
    ReoptPolicy,
    WorkloadManager,
)
from repro.sim import EventLoop, SimClock


def parts_schema():
    return Schema(
        "parts",
        (
            Field("sku", DataType.STRING),
            Field("price", DataType.FLOAT),
        ),
    )


def suppliers_schema():
    return Schema(
        "suppliers",
        (
            Field("sku", DataType.STRING),
            Field("qty", DataType.FLOAT),
        ),
    )


PARTS_ROWS = [(f"A-{i}", float(i)) for i in range(12)]
SUPPLIER_ROWS = [(f"A-{i}", float(100 + i)) for i in range(12)]


def build_engine(reopt=None, with_suppliers=False, parts_replicas=None):
    """Four sites, 'parts' in two fragments with RF=2 each by default."""
    clock = SimClock()
    catalog = FederationCatalog(clock)
    for i in range(4):
        catalog.make_site(f"s{i}")
    catalog.load_fragmented(
        Table(parts_schema(), PARTS_ROWS),
        2,
        parts_replicas or [["s0", "s1"], ["s2", "s3"]],
    )
    if with_suppliers:
        catalog.load_fragmented(
            Table(suppliers_schema(), SUPPLIER_ROWS),
            2,
            [["s1", "s2"], ["s3", "s0"]],
        )
    return FederatedEngine(catalog, reopt=reopt)


def rows_of(result):
    return sorted(map(tuple, result.table.rows))


def fragment_sites(physical):
    return {
        binding: [(c.fragment.fragment_id, c.site_name) for c in a.choices]
        for binding, a in physical.assignments.items()
        if a.kind == "fragments"
    }


class TestReoptPolicyValidation:
    def test_defaults_are_valid(self):
        policy = ReoptPolicy()
        assert policy.max_attempts >= 1
        assert policy.congestion_high > policy.congestion_low >= 1.0

    def test_rejects_zero_attempts(self):
        with pytest.raises(ValueError, match="max_attempts"):
            ReoptPolicy(max_attempts=0)

    def test_rejects_low_watermark_below_idle(self):
        with pytest.raises(ValueError, match="congestion_low"):
            ReoptPolicy(congestion_low=0.5)

    def test_rejects_inverted_hysteresis(self):
        with pytest.raises(ValueError, match="hysteresis"):
            ReoptPolicy(congestion_high=1.5, congestion_low=1.5)

    def test_rejects_bad_improvement_fraction(self):
        with pytest.raises(ValueError, match="min_improvement"):
            ReoptPolicy(min_improvement=1.0)
        with pytest.raises(ValueError, match="min_improvement"):
            ReoptPolicy(min_improvement=-0.1)

    def test_rejects_negative_replan_cap(self):
        with pytest.raises(ValueError, match="max_replans"):
            ReoptPolicy(max_replans=-1)


class TestEngineReopt:
    """Triggers fire inside Ship.open; migration swaps only the live copy."""

    def prepared_victim(self, engine, sql="select sku from parts"):
        """Prepare while healthy; return (prepared, first assigned site)."""
        prepared = engine.prepare(sql)
        victim = next(
            choice.site_name
            for assignment in prepared.physical.assignments.values()
            if assignment.kind == "fragments"
            for choice in assignment.choices
        )
        return prepared, victim

    def test_site_down_triggers_migration(self):
        engine = build_engine(reopt=ReoptPolicy())
        prepared, victim = self.prepared_victim(engine)
        engine.catalog.site(victim).up = False
        result = engine.execute(prepared)
        report = result.report
        assert report.reoptimizations == 1
        assert report.migrated_stages == 1
        assert report.reopt_wasted_seconds == 0.0
        (event,) = report.reopt_events
        assert event.reason == f"site-down:{victim}"
        assert event.migrated
        assert victim in event.from_sites
        assert victim not in event.to_sites
        # The answer matches a healthy static run bit for bit.
        healthy = build_engine().query("select sku from parts")
        assert rows_of(result) == rows_of(healthy)

    def test_migration_never_pollutes_the_prepared_template(self):
        engine = build_engine(reopt=ReoptPolicy())
        prepared, victim = self.prepared_victim(engine)
        before = fragment_sites(prepared.physical)
        engine.catalog.site(victim).up = False
        engine.execute(prepared)
        assert fragment_sites(prepared.physical) == before

    def test_congestion_spike_triggers_migration(self):
        engine = build_engine(reopt=ReoptPolicy())
        prepared, victim = self.prepared_victim(engine)
        engine.catalog.site(victim).set_slowdown(5.0)
        result = engine.execute(prepared)
        report = result.report
        assert report.migrated_stages == 1
        (event,) = report.reopt_events
        assert event.reason == f"congestion:{victim}"
        assert event.new_price < event.old_price

    def test_circuit_open_triggers_migration(self):
        engine = build_engine(reopt=ReoptPolicy())
        prepared, victim = self.prepared_victim(engine)
        for _ in range(engine.health.failure_threshold):
            engine.health.record_failure(victim)
        result = engine.execute(prepared)
        (event,) = result.report.reopt_events
        assert event.reason == f"circuit-open:{victim}"

    def test_deadline_overrun_triggers_resolicitation(self):
        engine = build_engine(reopt=ReoptPolicy())
        prepared, _ = self.prepared_victim(engine)
        # An absolute deadline already in the past projects an overrun for
        # any remaining stage.
        result = engine.execute(prepared, deadline_at=0.0)
        report = result.report
        assert report.reoptimizations == 1
        assert report.reopt_events[0].reason == "deadline"
        healthy = build_engine().query("select sku from parts")
        assert rows_of(result) == rows_of(healthy)

    def test_undisturbed_execution_reopts_nothing(self):
        engine = build_engine(reopt=ReoptPolicy())
        result = engine.query("select sku from parts")
        report = result.report
        assert report.reoptimizations == 0
        assert report.migrated_stages == 0
        assert report.reopt_events == []
        assert report.reopt_wasted_seconds == 0.0

    def test_worse_alternative_keeps_original_and_books_waste(self):
        # The only other replica of the victim's fragment is slowed even
        # harder: the trigger fires and the re-quote runs, but the fresh
        # placement cannot beat the incumbent, so the migration is refused
        # and the re-solicitation cost lands in the waste ledger.
        engine = build_engine(reopt=ReoptPolicy())
        prepared, victim = self.prepared_victim(engine)
        victim_choice = next(
            choice
            for assignment in prepared.physical.assignments.values()
            if assignment.kind == "fragments"
            for choice in assignment.choices
            if choice.site_name == victim
        )
        (alternative,) = [
            name
            for name in victim_choice.fragment.replica_sites()
            if name != victim
        ]
        engine.catalog.site(victim).set_slowdown(5.0)
        engine.catalog.site(alternative).set_slowdown(6.0)
        result = engine.execute(prepared)
        report = result.report
        assert report.reoptimizations == 1
        assert report.migrated_stages == 0
        assert report.reopt_wasted_seconds > 0.0
        (event,) = report.reopt_events
        assert not event.migrated
        healthy = build_engine().query("select sku from parts")
        assert rows_of(result) == rows_of(healthy)

    def test_pinned_fragment_skips_the_futile_resolicitation(self):
        # Fragment replicas pinned to single sites: nothing *can* migrate,
        # so the controller refuses to pay the market round trip at all.
        engine = build_engine(
            reopt=ReoptPolicy(), parts_replicas=[["s0"], ["s2"]]
        )
        prepared, victim = self.prepared_victim(engine)
        engine.catalog.site(victim).set_slowdown(5.0)
        result = engine.execute(prepared)
        report = result.report
        assert report.reoptimizations == 0
        assert report.reopt_events == []
        assert report.reopt_wasted_seconds == 0.0
        healthy = build_engine(
            parts_replicas=[["s0"], ["s2"]]
        ).query("select sku from parts")
        assert rows_of(result) == rows_of(healthy)

    def test_attempt_budget_bounds_resolicitations(self):
        sql = (
            "select p.sku from parts p join suppliers s on p.sku = s.sku"
        )
        engine = build_engine(
            reopt=ReoptPolicy(max_attempts=1), with_suppliers=True
        )
        prepared = engine.prepare(sql)
        # A past deadline triggers on every stage, but the budget admits
        # exactly one re-solicitation.
        result = engine.execute(prepared, deadline_at=0.0)
        report = result.report
        assert report.reoptimizations == 1
        assert len(report.reopt_events) == 1
        unlimited = build_engine(
            reopt=ReoptPolicy(max_attempts=3), with_suppliers=True
        )
        roomy = unlimited.execute(unlimited.prepare(sql), deadline_at=0.0)
        assert roomy.report.reoptimizations > 1
        assert rows_of(result) == rows_of(roomy)

    def test_reopt_cost_charged_into_response_time(self):
        engine = build_engine(reopt=ReoptPolicy())
        prepared, victim = self.prepared_victim(engine)
        baseline = engine.execute(prepared).report.response_seconds
        engine.catalog.site(victim).set_slowdown(5.0)
        migrated = engine.execute(prepared)
        assert migrated.report.reopt_events[0].modeled_seconds > 0.0
        # Re-quote seconds are folded into the modeled response.
        assert migrated.report.response_seconds > 0.0
        assert baseline > 0.0

    def test_explain_analyze_renders_reopt_line(self):
        engine = build_engine(reopt=ReoptPolicy())
        prepared, victim = self.prepared_victim(engine)
        engine.catalog.site(victim).up = False
        result = engine.execute(prepared)
        rendered = engine.render_analyze(result)
        assert "re-optimizations: 1" in rendered
        assert "migrated stages: 1" in rendered
        assert "reopt site-down" in rendered

    def test_reopt_metrics_recorded(self):
        engine = build_engine(reopt=ReoptPolicy())
        prepared, victim = self.prepared_victim(engine)
        engine.catalog.site(victim).up = False
        engine.execute(prepared)
        assert engine.metrics.counter("reopt.attempts").value == 1
        assert engine.metrics.counter("reopt.migrations").value == 1


class TestWorkloadMidFlightReplan:
    """Cluster disturbances tear up and re-execute running queries."""

    SQL = "select sku from parts where price > 1"

    def build(self, reopt=None, max_replans=None):
        clock = SimClock()
        catalog = FederationCatalog(clock)
        for i in range(4):
            catalog.make_site(f"s{i}")
        catalog.load_fragmented(
            Table(parts_schema(), PARTS_ROWS), 2, [["s0", "s1"], ["s2", "s3"]]
        )
        engine = FederatedEngine(catalog, reopt=reopt)
        loop = EventLoop(clock)
        kwargs = {} if max_replans is None else {"max_replans": max_replans}
        manager = WorkloadManager(engine, loop, max_in_flight=2, **kwargs)
        injector = FailureInjector(
            loop, catalog, mttf=1e9, mttr=1e9, rng=random.Random(7)
        )
        manager.watch(injector)
        return engine, loop, manager, injector

    def run_disturbed(self, reopt, disturb=True, queries=4):
        engine, loop, manager, injector = self.build(reopt)
        if disturb:
            injector.slow_at("s0", at=0.001, duration=5.0, factor=6.0)
            injector.fail_at("s2", at=0.002)
        handles = [manager.submit(self.SQL) for _ in range(queries)]
        manager.drain(*handles)
        return manager, handles

    def test_slowdown_and_kill_trigger_replans(self):
        manager, handles = self.run_disturbed(ReoptPolicy())
        assert manager.replans > 0
        assert manager.metrics.counter("workload.replans").value == (
            manager.replans
        )
        assert sum(h.result().report.migrated_stages for h in handles) >= 1

    def test_disturbed_answers_bit_identical_to_fault_free(self):
        _, adaptive = self.run_disturbed(ReoptPolicy())
        _, static = self.run_disturbed(None)
        _, fault_free = self.run_disturbed(None, disturb=False)
        reference = [rows_of(h.result()) for h in fault_free]
        assert [rows_of(h.result()) for h in adaptive] == reference
        assert [rows_of(h.result()) for h in static] == reference

    def test_adaptive_beats_static_under_disturbance(self):
        _, adaptive = self.run_disturbed(ReoptPolicy())
        _, static = self.run_disturbed(None)

        def mean_latency(handles):
            return sum(
                h.result().report.response_seconds for h in handles
            ) / len(handles)

        assert mean_latency(adaptive) < mean_latency(static)

    def test_repair_and_recovery_events_are_ignored(self):
        engine, loop, manager, injector = self.build(ReoptPolicy())
        handles = [manager.submit(self.SQL) for _ in range(2)]
        manager.site_event("s0", "repair")
        manager.site_event("s0", "recover")
        manager.drain(*handles)
        assert manager.replans == 0

    def test_replan_cap_zero_freezes_in_flight_queries(self):
        engine, loop, manager, injector = self.build(
            ReoptPolicy(max_replans=0)
        )
        injector.slow_at("s0", at=0.001, duration=5.0, factor=6.0)
        handles = [manager.submit(self.SQL) for _ in range(4)]
        manager.drain(*handles)
        assert manager.replans == 0

    def test_manager_replan_cap_used_without_engine_policy(self):
        engine, loop, manager, injector = self.build(None, max_replans=0)
        injector.fail_at("s0", at=0.001)
        handles = [manager.submit(self.SQL) for _ in range(4)]
        manager.drain(*handles)
        assert manager.replans == 0

    def test_wasted_seconds_ledger_charges_torn_up_work(self):
        manager, handles = self.run_disturbed(ReoptPolicy())
        wasted = sum(
            h.result().report.reopt_wasted_seconds for h in handles
        )
        assert wasted > 0.0  # the discarded in-flight work is not hidden

    def test_same_seed_same_schedule_is_deterministic(self):
        first_manager, first = self.run_disturbed(ReoptPolicy())
        second_manager, second = self.run_disturbed(ReoptPolicy())
        assert first_manager.replans == second_manager.replans
        assert [
            h.result().report.response_seconds for h in first
        ] == [h.result().report.response_seconds for h in second]
        assert [rows_of(h.result()) for h in first] == [
            rows_of(h.result()) for h in second
        ]


class TestSlowdownInjection:
    """Satellite: seeded transient slowdowns recorded in injector history."""

    def build(self, seed=11):
        clock = SimClock()
        catalog = FederationCatalog(clock)
        for i in range(4):
            catalog.make_site(f"s{i}")
        catalog.load_fragmented(
            Table(parts_schema(), PARTS_ROWS), 2, [["s0", "s1"], ["s2", "s3"]]
        )
        loop = EventLoop(clock)
        injector = FailureInjector(
            loop, catalog, mttf=1e9, mttr=1e9, rng=random.Random(seed)
        )
        return catalog, loop, injector

    def test_slow_window_sets_and_clears_the_factor(self):
        catalog, loop, injector = self.build()
        injector.slow_at("s1", at=1.0, duration=2.0, factor=4.0)
        loop.run_until(1.5)
        assert catalog.site("s1").slowdown_factor == 4.0
        assert injector.slowdowns == 1
        loop.run_until(3.5)
        assert catalog.site("s1").slowdown_factor == 1.0
        kinds = [(name, kind) for _, name, kind in injector.history]
        assert kinds == [("s1", "slow"), ("s1", "recover")]

    def test_recurring_slowdowns_reproduce_under_a_seed(self):
        def history(seed):
            catalog, loop, injector = self.build(seed)
            injector.start_slowdowns(
                mean_interval=5.0, duration=1.0, factor=3.0
            )
            loop.run_until(40.0)
            return injector.history

        assert history(3) == history(3)
        assert history(3) != history(4)

    def test_one_shot_fail_and_repair(self):
        catalog, loop, injector = self.build()
        injector.fail_at("s0", at=1.0)
        injector.repair_at("s0", at=2.0)
        loop.run_until(1.5)
        assert not catalog.site("s0").up
        loop.run_until(2.5)
        assert catalog.site("s0").up
        kinds = [(name, kind) for _, name, kind in injector.history]
        assert kinds == [("s0", "fail"), ("s0", "repair")]

    def test_transition_listeners_observe_every_kind(self):
        catalog, loop, injector = self.build()
        seen = []
        injector.on_transition(
            lambda time, name, kind: seen.append((name, kind))
        )
        injector.slow_at("s2", at=0.5, duration=1.0, factor=2.0)
        injector.fail_at("s3", at=0.7)
        loop.run_until(2.0)
        assert ("s2", "slow") in seen
        assert ("s2", "recover") in seen
        assert ("s3", "fail") in seen

    def test_slow_at_validates_arguments(self):
        from repro.core.errors import QueryError

        _, _, injector = self.build()
        with pytest.raises(QueryError, match="duration"):
            injector.slow_at("s0", at=1.0, duration=0.0, factor=2.0)
        with pytest.raises(QueryError, match="factor"):
            injector.slow_at("s0", at=1.0, duration=1.0, factor=0.5)


# -- the safety property ----------------------------------------------------

disturbance = st.tuples(
    st.sampled_from(
        [("slow", "s0"), ("slow", "s1"), ("slow", "s2"), ("slow", "s3"),
         ("fail", "s0"), ("fail", "s2")]
    ),
    st.floats(min_value=0.0005, max_value=0.05),
    st.floats(min_value=2.0, max_value=8.0),
)


class TestAdaptiveEquivalenceProperty:
    SQL = "select sku, price from parts where price > 0"

    def run_schedule(self, schedule, reopt):
        clock = SimClock()
        catalog = FederationCatalog(clock)
        for i in range(4):
            catalog.make_site(f"s{i}")
        catalog.load_fragmented(
            Table(parts_schema(), PARTS_ROWS), 2, [["s0", "s1"], ["s2", "s3"]]
        )
        engine = FederatedEngine(catalog, reopt=reopt)
        loop = EventLoop(clock)
        manager = WorkloadManager(engine, loop, max_in_flight=2)
        injector = FailureInjector(
            loop, catalog, mttf=1e9, mttr=1e9, rng=random.Random(1)
        )
        manager.watch(injector)
        for (kind, site), at, factor in schedule:
            if kind == "slow":
                injector.slow_at(site, at=at, duration=1.0, factor=factor)
            else:
                injector.fail_at(site, at=at)
        handles = [manager.submit(self.SQL) for _ in range(3)]
        manager.drain(*handles)
        return handles

    @settings(max_examples=25, deadline=None)
    @given(st.lists(disturbance, max_size=4))
    def test_adaptive_answers_match_fault_free_static(self, schedule):
        policy = ReoptPolicy()
        adaptive = self.run_schedule(schedule, policy)
        fault_free = self.run_schedule([], None)
        assert [rows_of(h.result()) for h in adaptive] == [
            rows_of(h.result()) for h in fault_free
        ]
        for handle in adaptive:
            report = handle.result().report
            # The per-execution re-solicitation budget is never exceeded.
            assert report.reoptimizations <= policy.max_attempts
            assert handle._replans <= policy.max_replans

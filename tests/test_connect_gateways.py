"""Tests for ERP gateways and the CSV/XML file connectors."""

import pytest

from repro.connect import CsvConnector, ErpGateway, ErpSystem, XmlConnector
from repro.connect.source import Predicate
from repro.core import DataType, Field, Schema, SchemaError, Table
from repro.core.errors import SourceUnavailableError, WrapperError
from repro.sim import SimClock


def orders_schema():
    return Schema(
        "orders",
        (
            Field("order_id", DataType.STRING),
            Field("sku", DataType.STRING),
            Field("qty", DataType.INTEGER),
        ),
    )


def make_erp():
    clock = SimClock()
    erp = ErpSystem("sap-acme", clock)
    erp.load_table(
        Table(
            orders_schema(),
            [("o1", "A-1", 5), ("o2", "A-2", 2), ("o3", "A-1", 9)],
        )
    )
    return clock, erp


class TestErpSystem:
    def test_query_returns_table(self):
        _, erp = make_erp()
        assert len(erp.query("orders")) == 3

    def test_query_charges_time(self):
        clock, erp = make_erp()
        erp.query("orders")
        assert clock.now() == pytest.approx(0.05 + 3 * 0.0001)

    def test_predicates_pushed_down(self):
        _, erp = make_erp()
        table = erp.query("orders", [Predicate("sku", "=", "A-1")])
        assert table.column("order_id") == ["o1", "o3"]

    def test_unknown_table_rejected(self):
        _, erp = make_erp()
        with pytest.raises(WrapperError):
            erp.query("ghosts")

    def test_down_erp_raises(self):
        _, erp = make_erp()
        erp.up = False
        with pytest.raises(SourceUnavailableError):
            erp.query("orders")

    def test_update_rows_is_visible(self):
        _, erp = make_erp()
        erp.update_rows("orders", Table(orders_schema(), [("o9", "B-1", 1)]))
        assert erp.query("orders").column("order_id") == ["o9"]


class TestErpGateway:
    def test_fetch_reports_cost(self):
        _, erp = make_erp()
        gateway = ErpGateway("acme-orders", erp, "orders")
        result = gateway.fetch()
        assert len(result.table) == 3
        assert result.cost_seconds > 0

    def test_gateway_estimates(self):
        _, erp = make_erp()
        gateway = ErpGateway("acme-orders", erp, "orders")
        assert gateway.estimated_rows() == 3
        assert gateway.estimated_cost() == pytest.approx(0.05 + 3 * 0.0001)

    def test_availability_tracks_erp(self):
        _, erp = make_erp()
        gateway = ErpGateway("acme-orders", erp, "orders")
        erp.up = False
        assert not gateway.is_available()


CSV_TEXT = """sku,name,price,active
A-1,black ink,5.00,true
A-2,"ink, blue",6.50,false
A-3,"say ""hi"" pen",,yes
"""


class TestCsvConnector:
    def schema(self):
        return Schema(
            "catalog",
            (
                Field("sku", DataType.STRING),
                Field("name", DataType.STRING),
                Field("price", DataType.FLOAT),
                Field("active", DataType.BOOLEAN),
            ),
        )

    def test_parses_quoted_cells_and_types(self):
        connector = CsvConnector("csv", self.schema(), CSV_TEXT)
        rows = connector.fetch().table.to_dicts()
        assert rows[1]["name"] == "ink, blue"
        assert rows[2]["name"] == 'say "hi" pen'
        assert rows[0]["price"] == 5.0
        assert rows[2]["price"] is None
        assert rows[0]["active"] is True
        assert rows[1]["active"] is False
        assert rows[2]["active"] is True  # "yes"

    def test_header_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            CsvConnector("csv", self.schema(), "a,b,c,d\n1,2,3,4\n")

    def test_cell_count_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            CsvConnector("csv", self.schema(), "sku,name,price,active\nA-1,x\n")

    def test_no_header_mode(self):
        connector = CsvConnector(
            "csv", self.schema(), "A-1,ink,1.0,true\n", has_header=False
        )
        assert len(connector.fetch().table) == 1

    def test_predicates(self):
        connector = CsvConnector("csv", self.schema(), CSV_TEXT)
        result = connector.fetch([Predicate("active", "=", True)])
        assert result.table.column("sku") == ["A-1", "A-3"]


XML_TEXT = """
<catalog>
  <item sku="A-1"><name>black ink</name><price>5.00</price><qty>10</qty></item>
  <item sku="A-2"><name>blue ink</name><price>6.50</price><qty>3</qty></item>
</catalog>
"""


class TestXmlConnector:
    def schema(self):
        return Schema(
            "catalog",
            (
                Field("sku", DataType.STRING),
                Field("name", DataType.STRING),
                Field("price", DataType.FLOAT),
                Field("qty", DataType.INTEGER),
            ),
        )

    def make(self):
        return XmlConnector(
            "xml",
            self.schema(),
            XML_TEXT,
            row_path="//item",
            field_paths={
                "sku": "@sku",
                "name": "name/text()",
                "price": "price/text()",
                "qty": "qty/text()",
            },
        )

    def test_extracts_rows(self):
        rows = self.make().fetch().table.to_dicts()
        assert rows == [
            {"sku": "A-1", "name": "black ink", "price": 5.0, "qty": 10},
            {"sku": "A-2", "name": "blue ink", "price": 6.5, "qty": 3},
        ]

    def test_missing_field_path_rejected(self):
        with pytest.raises(SchemaError):
            XmlConnector("xml", self.schema(), XML_TEXT, "//item", {"sku": "@sku"})

    def test_absent_path_yields_none(self):
        connector = XmlConnector(
            "xml",
            Schema("c", (Field("sku", DataType.STRING), Field("color", DataType.STRING))),
            XML_TEXT,
            "//item",
            {"sku": "@sku", "color": "color/text()"},
        )
        assert connector.fetch().table.column("color") == [None, None]

    def test_element_path_yields_text(self):
        connector = XmlConnector(
            "xml",
            Schema("c", (Field("name", DataType.STRING),)),
            XML_TEXT,
            "//item",
            {"name": "name"},
        )
        assert connector.fetch().table.column("name") == ["black ink", "blue ink"]


class TestXsltCustomizedWrapper:
    """§4: "expert users can also customize wrappers directly with XSLT"."""

    AWKWARD_FEED = """
    <feed>
      <entry kind="product" code="A-1"><label>black ink</label></entry>
      <entry kind="banner" code="x"><label>SALE SALE SALE</label></entry>
      <entry kind="product" code="A-2"><label>hex bolt</label></entry>
    </feed>
    """

    def test_transformer_reshapes_before_extraction(self):
        from repro.xmlkit import XmlElement, XmlTransformer

        stylesheet = XmlTransformer()
        stylesheet.add_rule("entry[kind=banner]", lambda e, t: [])  # drop ads

        @stylesheet.rule("entry")
        def to_item(element, t):
            item = XmlElement("item", {"sku": element.get("code") or ""})
            name = XmlElement("name")
            label = element.first("label")
            if label is not None:
                name.append(label.text)
            item.append(name)
            return [item]

        connector = XmlConnector(
            "feed",
            Schema("feed", (Field("sku", DataType.STRING),
                            Field("name", DataType.STRING))),
            self.AWKWARD_FEED,
            row_path="//item",
            field_paths={"sku": "@sku", "name": "name/text()"},
            transformer=stylesheet,
        )
        assert connector.fetch().table.to_dicts() == [
            {"sku": "A-1", "name": "black ink"},
            {"sku": "A-2", "name": "hex bolt"},
        ]

"""Tests for the agoric and centralized optimizers and load-balance policies."""

import random

import pytest

from repro.core import DataType, Field, Schema, Table
from repro.core.errors import QueryError
from repro.federation import (
    AgoricOptimizer,
    CentralizedOptimizer,
    FederationCatalog,
    LeastLoadedPolicy,
    RandomPolicy,
    RoundRobinPolicy,
    SnapshotLoadPolicy,
)
from repro.sim import SimClock
from repro.sql import build_plan, parse_sql


def make_catalog(site_count=4, fragment_count=2, replication=2):
    catalog = FederationCatalog(SimClock())
    names = [f"s{i}" for i in range(site_count)]
    for name in names:
        catalog.make_site(name)
    schema = Schema(
        "parts",
        (Field("sku", DataType.STRING), Field("qty", DataType.INTEGER)),
    )
    table = Table(schema, [(f"A-{i}", i) for i in range(40)])
    placement = [
        [names[(i + r) % site_count] for r in range(replication)]
        for i in range(fragment_count)
    ]
    catalog.load_fragmented(table, fragment_count, placement)
    return catalog


def plan_for(catalog, sql="select sku from parts"):
    statement = parse_sql(sql)
    fields = catalog.binding_fields({statement.table.binding: statement.table.name})
    return build_plan(statement, fields)


class TestAgoricOptimizer:
    def test_assigns_every_fragment(self):
        catalog = make_catalog()
        physical = AgoricOptimizer(catalog).optimize(plan_for(catalog))
        assignment = physical.assignments["parts"]
        assert assignment.kind == "fragments"
        assert len(assignment.choices) == 2
        assert physical.optimizer == "agoric"

    def test_bids_prefer_idle_sites(self):
        catalog = make_catalog(site_count=2, fragment_count=1, replication=2)
        catalog.site("s0").enqueue(100.0)  # s0 is swamped
        physical = AgoricOptimizer(catalog).optimize(plan_for(catalog))
        assert physical.assignments["parts"].choices[0].site_name == "s1"

    def test_bids_skip_down_sites(self):
        catalog = make_catalog(site_count=2, fragment_count=1, replication=2)
        catalog.site("s0").up = False
        physical = AgoricOptimizer(catalog).optimize(plan_for(catalog))
        assert physical.assignments["parts"].choices[0].site_name == "s1"

    def test_all_replicas_down_raises(self):
        catalog = make_catalog(site_count=2, fragment_count=1, replication=2)
        catalog.site("s0").up = False
        catalog.site("s1").up = False
        with pytest.raises(QueryError):
            AgoricOptimizer(catalog).optimize(plan_for(catalog))

    def test_sites_contacted_bounded_by_replicas_not_federation(self):
        small = make_catalog(site_count=4, fragment_count=2, replication=2)
        large = make_catalog(site_count=64, fragment_count=2, replication=2)
        contacted_small = AgoricOptimizer(small).optimize(plan_for(small)).sites_contacted
        contacted_large = AgoricOptimizer(large).optimize(plan_for(large)).sites_contacted
        assert contacted_small == contacted_large == 4  # 2 fragments x 2 replicas

    def test_sample_size_caps_bidding(self):
        catalog = make_catalog(site_count=8, fragment_count=1, replication=8)
        optimizer = AgoricOptimizer(catalog, sample_size=3, rng=random.Random(7))
        physical = optimizer.optimize(plan_for(catalog))
        assert physical.sites_contacted == 3

    def test_optimization_seconds_includes_bid_round(self):
        catalog = make_catalog()
        physical = AgoricOptimizer(catalog, bid_round_trip_seconds=0.5).optimize(
            plan_for(catalog)
        )
        assert physical.optimization_seconds >= 0.5

    def test_coordinator_is_a_chosen_site(self):
        catalog = make_catalog()
        physical = AgoricOptimizer(catalog).optimize(plan_for(catalog))
        chosen = {c.site_name for c in physical.assignments["parts"].choices}
        assert physical.coordinator in chosen

    def test_explicit_coordinator_honoured(self):
        catalog = make_catalog()
        physical = AgoricOptimizer(catalog).optimize(plan_for(catalog), coordinator="s3")
        assert physical.coordinator == "s3"

    def test_price_total_positive(self):
        catalog = make_catalog()
        assert AgoricOptimizer(catalog).optimize(plan_for(catalog)).total_price > 0


class TestCentralizedOptimizer:
    def test_assigns_every_fragment(self):
        catalog = make_catalog()
        physical = CentralizedOptimizer(catalog).optimize(plan_for(catalog))
        assert len(physical.assignments["parts"].choices) == 2
        assert physical.optimizer == "centralized"

    def test_stats_cost_grows_with_federation_size(self):
        small = make_catalog(site_count=4)
        large = make_catalog(site_count=256)
        cost_small = CentralizedOptimizer(small).optimize(plan_for(small)).optimization_seconds
        cost_large = CentralizedOptimizer(large).optimize(plan_for(large)).optimization_seconds
        assert cost_large > cost_small

    def test_snapshot_goes_stale_between_refreshes(self):
        catalog = make_catalog(site_count=2, fragment_count=1, replication=2)
        optimizer = CentralizedOptimizer(catalog, stats_refresh_interval=300.0)
        optimizer.optimize(plan_for(catalog))  # snapshot at t=0: both idle
        catalog.site("s0").enqueue(100.0)  # s0 becomes swamped *after* snapshot
        physical = optimizer.optimize(plan_for(catalog))
        # Stale stats still say s0 is idle; the centralized pick ignores the load.
        assert physical.assignments["parts"].choices[0].site_name == "s0"

    def test_fresh_snapshot_sees_load(self):
        catalog = make_catalog(site_count=2, fragment_count=1, replication=2)
        optimizer = CentralizedOptimizer(catalog, stats_refresh_interval=0.0)
        catalog.site("s0").enqueue(100.0)
        physical = optimizer.optimize(plan_for(catalog))
        assert physical.assignments["parts"].choices[0].site_name == "s1"

    def test_exhaustive_spreads_fragments_across_sites(self):
        catalog = make_catalog(site_count=2, fragment_count=2, replication=2)
        physical = CentralizedOptimizer(catalog).optimize(plan_for(catalog))
        chosen = [c.site_name for c in physical.assignments["parts"].choices]
        # Makespan minimization puts the two fragments on different sites.
        assert len(set(chosen)) == 2

    def test_greedy_fallback_above_combination_cap(self):
        catalog = make_catalog(site_count=8, fragment_count=8, replication=4)
        optimizer = CentralizedOptimizer(catalog, max_combinations=10)
        physical = optimizer.optimize(plan_for(catalog))
        assert len(physical.assignments["parts"].choices) == 8

    def test_down_replica_not_chosen(self):
        catalog = make_catalog(site_count=2, fragment_count=1, replication=2)
        catalog.site("s0").up = False
        physical = CentralizedOptimizer(catalog).optimize(plan_for(catalog))
        assert physical.assignments["parts"].choices[0].site_name == "s1"


class TestReplicaPolicies:
    def fragment(self, catalog):
        return catalog.entry("parts").fragments[0]

    def test_random_policy_deterministic_with_seed(self):
        catalog = make_catalog()
        policy_a = RandomPolicy(random.Random(3))
        policy_b = RandomPolicy(random.Random(3))
        fragment = self.fragment(catalog)
        picks_a = [policy_a.choose(fragment, catalog) for _ in range(5)]
        picks_b = [policy_b.choose(fragment, catalog) for _ in range(5)]
        assert picks_a == picks_b

    def test_round_robin_cycles(self):
        catalog = make_catalog(site_count=2, fragment_count=1, replication=2)
        policy = RoundRobinPolicy()
        fragment = self.fragment(catalog)
        picks = [policy.choose(fragment, catalog) for _ in range(4)]
        assert picks == ["s0", "s1", "s0", "s1"]

    def test_least_loaded_live(self):
        catalog = make_catalog(site_count=2, fragment_count=1, replication=2)
        catalog.site("s0").enqueue(10.0)
        assert LeastLoadedPolicy().choose(self.fragment(catalog), catalog) == "s1"

    def test_snapshot_policy_uses_stale_stats(self):
        catalog = make_catalog(site_count=2, fragment_count=1, replication=2)
        policy = SnapshotLoadPolicy(refresh_interval=1000.0)
        fragment = self.fragment(catalog)
        assert policy.choose(fragment, catalog) == "s0"  # snapshot: both idle
        catalog.site("s0").enqueue(50.0)
        assert policy.choose(fragment, catalog) == "s0"  # still thinks s0 idle
        catalog.clock.advance(2000.0)
        assert policy.choose(fragment, catalog) == "s0"  # backlog drained anyway

    def test_policy_skips_down_sites(self):
        catalog = make_catalog(site_count=2, fragment_count=1, replication=2)
        catalog.site("s0").up = False
        assert RoundRobinPolicy().choose(self.fragment(catalog), catalog) == "s1"

    def test_no_live_replica_raises(self):
        catalog = make_catalog(site_count=2, fragment_count=1, replication=2)
        catalog.site("s0").up = False
        catalog.site("s1").up = False
        with pytest.raises(QueryError):
            LeastLoadedPolicy().choose(self.fragment(catalog), catalog)


class TestPolicyOptimizer:
    def test_round_robin_policy_drives_plans(self):
        from repro.federation import FederatedEngine, PolicyOptimizer, RoundRobinPolicy

        catalog = make_catalog(site_count=2, fragment_count=1, replication=2)
        engine = FederatedEngine(
            catalog, optimizer=PolicyOptimizer(catalog, RoundRobinPolicy())
        )
        first = engine.query("select sku from parts", advance_clock=False)
        second = engine.query("select sku from parts", advance_clock=False)
        assert first.plan.assignments["parts"].choices[0].site_name == "s0"
        assert second.plan.assignments["parts"].choices[0].site_name == "s1"
        assert first.plan.optimizer.startswith("policy:")

    def test_policy_optimizer_answers_match_agoric(self):
        from repro.federation import FederatedEngine, LeastLoadedPolicy, PolicyOptimizer

        catalog_a = make_catalog()
        catalog_b = make_catalog()
        agoric_rows = FederatedEngine(catalog_a).query(
            "select sku from parts where qty > 10", advance_clock=False
        ).table.rows
        policy_rows = FederatedEngine(
            catalog_b, optimizer=PolicyOptimizer(catalog_b, LeastLoadedPolicy())
        ).query("select sku from parts where qty > 10", advance_clock=False).table.rows
        assert sorted(agoric_rows) == sorted(policy_rows)

    def test_policy_optimizer_serves_views(self):
        from repro.federation import FederatedEngine, PolicyOptimizer, RoundRobinPolicy

        catalog = make_catalog()
        engine = FederatedEngine(
            catalog, optimizer=PolicyOptimizer(catalog, RoundRobinPolicy())
        )
        engine.create_materialized_view("parts_mv", "parts", "s0")
        result = engine.query("select count(*) as n from parts", max_staleness=60.0)
        assert result.plan.assignments["parts"].kind == "view"


class TestSelectivityAwareBidding:
    def test_filtered_scan_prices_below_full_scan(self):
        catalog = make_catalog()
        optimizer = AgoricOptimizer(catalog)
        full = optimizer.optimize(plan_for(catalog, "select sku from parts"))
        filtered = optimizer.optimize(
            plan_for(catalog, "select sku from parts where qty = 7")
        )
        assert filtered.total_price < full.total_price

    def test_selectivity_heuristics(self):
        from repro.sql.planner import ScanNode
        from repro.connect.source import Predicate

        def scan_with(*predicates):
            node = ScanNode("t", "t")
            node.pushdown.extend(predicates)
            return node

        estimate = AgoricOptimizer.estimated_selectivity
        assert estimate(scan_with()) == 1.0
        assert estimate(scan_with(Predicate("a", "=", 1))) == pytest.approx(0.1)
        assert estimate(scan_with(Predicate("a", ">", 1))) == pytest.approx(0.3)
        many = scan_with(*[Predicate("a", "=", i) for i in range(9)])
        assert estimate(many) == pytest.approx(0.01)  # floored


class TestHeterogeneousMachineEconomics:
    def test_bids_favor_faster_cheaper_machines(self):
        from repro.federation import Site

        """A fast, cheap machine should win the market when idle."""
        catalog = FederationCatalog(SimClock())
        catalog.add_site(Site("slow-pricey", catalog.clock,
                              cpu_seconds_per_row=0.001, price_per_second=2.0))
        catalog.add_site(Site("fast-cheap", catalog.clock,
                              cpu_seconds_per_row=0.0001, price_per_second=0.5))
        schema = Schema("t", (Field("a", DataType.INTEGER),))
        table = Table(schema, [(i,) for i in range(1000)])
        catalog.load_fragmented(table, 1, [["slow-pricey", "fast-cheap"]])
        physical = AgoricOptimizer(catalog).optimize(plan_for(catalog, "select a from t"))
        assert physical.assignments["t"].choices[0].site_name == "fast-cheap"

    def test_swamped_fast_machine_loses_to_idle_slow_one(self):
        from repro.federation import Site

        catalog = FederationCatalog(SimClock())
        catalog.add_site(Site("slow", catalog.clock, cpu_seconds_per_row=0.001))
        catalog.add_site(Site("fast", catalog.clock, cpu_seconds_per_row=0.0001))
        schema = Schema("t", (Field("a", DataType.INTEGER),))
        catalog.load_fragmented(Table(schema, [(i,) for i in range(1000)]),
                                1, [["slow", "fast"]])
        catalog.site("fast").enqueue(60.0)  # a big batch job lands on it
        physical = AgoricOptimizer(catalog).optimize(plan_for(catalog, "select a from t"))
        assert physical.assignments["t"].choices[0].site_name == "slow"

"""Unit tests for the metrics registry."""

import math
import statistics

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import MetricsRegistry
from repro.sim.metrics import DEFAULT_RESERVOIR_SIZE


class TestCounter:
    def test_counts_up(self):
        metrics = MetricsRegistry()
        metrics.counter("queries").inc()
        metrics.counter("queries").inc(2)
        assert metrics.counter("queries").value == 3

    def test_rejects_decrease(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("q").inc(-1)


class TestGauge:
    def test_set_and_add(self):
        gauge = MetricsRegistry().gauge("load")
        gauge.set(5)
        gauge.add(-2)
        assert gauge.value == 3


class TestHistogram:
    def test_summary_statistics(self):
        histogram = MetricsRegistry().histogram("latency")
        for sample in [1.0, 2.0, 3.0, 4.0]:
            histogram.observe(sample)
        assert histogram.count == 4
        assert histogram.mean == 2.5
        assert histogram.minimum == 1.0
        assert histogram.maximum == 4.0
        assert histogram.total == 10.0

    def test_empty_histogram_reports_nan(self):
        histogram = MetricsRegistry().histogram("empty")
        assert math.isnan(histogram.mean)
        assert math.isnan(histogram.percentile(50))

    def test_percentiles_nearest_rank(self):
        histogram = MetricsRegistry().histogram("p")
        for sample in range(1, 101):
            histogram.observe(float(sample))
        assert histogram.percentile(50) == 50.0
        assert histogram.percentile(99) == 99.0
        assert histogram.percentile(100) == 100.0
        assert histogram.percentile(0) == 1.0

    def test_percentile_out_of_range_rejected(self):
        histogram = MetricsRegistry().histogram("p")
        with pytest.raises(ValueError):
            histogram.percentile(101)

    def test_stddev_of_constant_series_is_zero(self):
        histogram = MetricsRegistry().histogram("s")
        for _ in range(5):
            histogram.observe(3.0)
        assert histogram.stddev == 0.0

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1))
    def test_percentile_is_always_an_observed_sample(self, samples):
        histogram = MetricsRegistry().histogram("h")
        for sample in samples:
            histogram.observe(sample)
        assert histogram.percentile(50) in samples
        assert histogram.minimum <= histogram.percentile(50) <= histogram.maximum


class TestHistogramReservoir:
    def test_memory_is_capped_at_capacity(self):
        histogram = MetricsRegistry().histogram("wait", capacity=64)
        for sample in range(10_000):
            histogram.observe(float(sample))
        assert len(histogram.samples) == 64

    def test_default_capacity_is_at_least_4096(self):
        histogram = MetricsRegistry().histogram("wait")
        assert histogram.capacity >= 4096
        assert histogram.capacity == DEFAULT_RESERVOIR_SIZE

    def test_aggregates_stay_exact_past_the_cap(self):
        histogram = MetricsRegistry().histogram("wait", capacity=16)
        samples = [float(i) for i in range(1000)]
        for sample in samples:
            histogram.observe(sample)
        assert histogram.count == 1000
        assert histogram.total == sum(samples)
        assert histogram.mean == pytest.approx(499.5)
        assert histogram.minimum == 0.0
        assert histogram.maximum == 999.0
        expected_stddev = statistics.stdev(samples)
        assert histogram.stddev == pytest.approx(expected_stddev, rel=1e-9)

    def test_reservoir_holds_a_representative_subset(self):
        histogram = MetricsRegistry().histogram("wait", capacity=256)
        for sample in range(100_000):
            histogram.observe(float(sample))
        # Every retained sample was actually observed, and the estimated
        # median lands near the true median.
        assert all(0.0 <= s < 100_000 for s in histogram.samples)
        assert histogram.percentile(50) == pytest.approx(50_000, rel=0.15)

    def test_sampling_is_deterministic_per_name(self):
        def fill(name):
            histogram = MetricsRegistry().histogram(name, capacity=32)
            for sample in range(5000):
                histogram.observe(float(sample))
            return list(histogram.samples)

        assert fill("latency") == fill("latency")

    def test_below_capacity_keeps_every_sample(self):
        histogram = MetricsRegistry().histogram("wait", capacity=100)
        for sample in [5.0, 1.0, 3.0]:
            histogram.observe(sample)
        assert sorted(histogram.samples) == [1.0, 3.0, 5.0]

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("bad", capacity=0)


class TestRegistry:
    def test_same_name_same_instrument(self):
        metrics = MetricsRegistry()
        assert metrics.counter("a") is metrics.counter("a")
        assert metrics.histogram("b") is metrics.histogram("b")
        assert metrics.gauge("c") is metrics.gauge("c")

    def test_snapshot_flattens_everything(self):
        metrics = MetricsRegistry()
        metrics.counter("served").inc(7)
        metrics.gauge("load").set(0.5)
        metrics.histogram("latency").observe(2.0)
        snapshot = metrics.snapshot()
        assert snapshot["served"] == 7
        assert snapshot["load"] == 0.5
        assert snapshot["latency.count"] == 1.0
        assert snapshot["latency.mean"] == 2.0

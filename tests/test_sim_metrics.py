"""Unit tests for the metrics registry."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import MetricsRegistry


class TestCounter:
    def test_counts_up(self):
        metrics = MetricsRegistry()
        metrics.counter("queries").inc()
        metrics.counter("queries").inc(2)
        assert metrics.counter("queries").value == 3

    def test_rejects_decrease(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("q").inc(-1)


class TestGauge:
    def test_set_and_add(self):
        gauge = MetricsRegistry().gauge("load")
        gauge.set(5)
        gauge.add(-2)
        assert gauge.value == 3


class TestHistogram:
    def test_summary_statistics(self):
        histogram = MetricsRegistry().histogram("latency")
        for sample in [1.0, 2.0, 3.0, 4.0]:
            histogram.observe(sample)
        assert histogram.count == 4
        assert histogram.mean == 2.5
        assert histogram.minimum == 1.0
        assert histogram.maximum == 4.0
        assert histogram.total == 10.0

    def test_empty_histogram_reports_nan(self):
        histogram = MetricsRegistry().histogram("empty")
        assert math.isnan(histogram.mean)
        assert math.isnan(histogram.percentile(50))

    def test_percentiles_nearest_rank(self):
        histogram = MetricsRegistry().histogram("p")
        for sample in range(1, 101):
            histogram.observe(float(sample))
        assert histogram.percentile(50) == 50.0
        assert histogram.percentile(99) == 99.0
        assert histogram.percentile(100) == 100.0
        assert histogram.percentile(0) == 1.0

    def test_percentile_out_of_range_rejected(self):
        histogram = MetricsRegistry().histogram("p")
        with pytest.raises(ValueError):
            histogram.percentile(101)

    def test_stddev_of_constant_series_is_zero(self):
        histogram = MetricsRegistry().histogram("s")
        for _ in range(5):
            histogram.observe(3.0)
        assert histogram.stddev == 0.0

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1))
    def test_percentile_is_always_an_observed_sample(self, samples):
        histogram = MetricsRegistry().histogram("h")
        for sample in samples:
            histogram.observe(sample)
        assert histogram.percentile(50) in samples
        assert histogram.minimum <= histogram.percentile(50) <= histogram.maximum


class TestRegistry:
    def test_same_name_same_instrument(self):
        metrics = MetricsRegistry()
        assert metrics.counter("a") is metrics.counter("a")
        assert metrics.histogram("b") is metrics.histogram("b")
        assert metrics.gauge("c") is metrics.gauge("c")

    def test_snapshot_flattens_everything(self):
        metrics = MetricsRegistry()
        metrics.counter("served").inc(7)
        metrics.gauge("load").set(0.5)
        metrics.histogram("latency").observe(2.0)
        snapshot = metrics.snapshot()
        assert snapshot["served"] == 7
        assert snapshot["load"] == 0.5
        assert snapshot["latency.count"] == 1.0
        assert snapshot["latency.mean"] == 2.0

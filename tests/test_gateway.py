"""Tests for the query gateway: the serving layer in front of the federation.

Covers the prepared-statement plan cache (normalized-SQL keying, LRU
eviction, invalidation on repartition and base-table updates), the session
pool (reuse, exhaustion, idle cap), cursor-token pagination, the
textual-binding fallback for grammar positions that cannot hold a
placeholder, and the load-bearing property: gateway-prepared execution is
row-identical to direct ``engine.query`` for randomized bindings.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DataType, Field, Schema, Table
from repro.core.errors import QueryError
from repro.federation import (
    FederatedEngine,
    FederationCatalog,
    Gateway,
    WorkloadManager,
)
from repro.federation.gateway import PlanCache, bind_sql_text
from repro.sim import EventLoop, SimClock
from repro.sql.parser import SqlParseError


def build_federation(sites=3, fragments=6, rows_per_fragment=20):
    """A small replicated federation: `items(k, v)` with RF=2 placement."""
    catalog = FederationCatalog(SimClock())
    site_names = [f"s{i}" for i in range(sites)]
    for name in site_names:
        catalog.make_site(name)
    schema = Schema(
        "items", (Field("k", DataType.STRING), Field("v", DataType.INTEGER))
    )
    total = fragments * rows_per_fragment
    table = Table(schema, [(f"k{i:04d}", i) for i in range(total)])
    placement = [
        [site_names[i % sites], site_names[(i + 1) % sites]]
        for i in range(fragments)
    ]
    catalog.load_fragmented(table, fragments, placement)
    engine = FederatedEngine(catalog)
    loop = EventLoop(catalog.clock)
    return catalog, engine, loop


def make_gateway(max_sessions=4, max_idle=2, plan_cache_size=8, **federation_kwargs):
    catalog, engine, loop = build_federation(**federation_kwargs)
    manager = WorkloadManager(engine, loop, max_in_flight=2)
    gateway = Gateway(
        manager,
        max_sessions=max_sessions,
        max_idle=max_idle,
        plan_cache_size=plan_cache_size,
    )
    return catalog, engine, gateway


QUERY = "select count(*) from items where v < ?"


class TestPlanCache:
    def test_same_statement_hits_once_prepared(self):
        _, _, gateway = make_gateway()
        with gateway.connect() as session:
            session.execute(QUERY, (10,))
            session.execute(QUERY, (50,))
            session.execute(QUERY, (90,))
        cache = gateway.plan_cache
        assert cache.misses == 1
        assert cache.hits == 2
        assert cache.hit_rate == pytest.approx(2 / 3)
        assert gateway.metrics.counter("gateway.plan_cache.hits").value == 2
        assert gateway.metrics.counter("gateway.plan_cache.misses").value == 1

    def test_normalized_spellings_share_one_template(self):
        _, _, gateway = make_gateway()
        spellings = [
            "select count(*) from items where v < ?",
            "SELECT COUNT(*) FROM items WHERE v < ?",
            "select count(*)  from items\n  where v < ?  -- portal probe",
        ]
        with gateway.connect() as session:
            for spelling in spellings:
                assert session.execute(spelling, (30,)).rows == [(30,)]
        assert gateway.plan_cache.misses == 1
        assert gateway.plan_cache.hits == len(spellings) - 1

    def test_quoted_material_is_not_normalized(self):
        _, _, gateway = make_gateway()
        with gateway.connect() as session:
            session.execute("select count(*) from items where k = 'K0001'")
            session.execute("select count(*) from items where k = 'k0001'")
        # Different string literals are different statements.
        assert gateway.plan_cache.misses == 2

    def test_staleness_bound_keys_separately(self):
        _, _, gateway = make_gateway()
        with gateway.connect() as session:
            session.execute(QUERY, (10,))
            session.execute(QUERY, (10,), max_staleness=60.0)
        assert gateway.plan_cache.misses == 2

    def test_pinned_coordinator_keys_separately(self):
        """Regression: sessions pinning different coordinators must not
        share one cached template.

        Pre-fix the key was ``(normalized_sql, max_staleness)`` only, so
        the second session was served the first session's template -- a
        plan whose site assignments route everything through the *other*
        session's pinned coordinator.
        """
        _, _, gateway = make_gateway()
        a = gateway.connect(tenant="acme", coordinator="s0")
        b = gateway.connect(tenant="bolt", coordinator="s1")
        try:
            ra = a.execute(QUERY, (30,))
            rb = b.execute(QUERY, (30,))
        finally:
            a.close()
            b.close()
        assert ra.prepared is not None and rb.prepared is not None
        assert ra.prepared is not rb.prepared  # distinct templates
        assert ra.result.plan.coordinator == "s0"
        assert rb.result.plan.coordinator == "s1"
        assert gateway.plan_cache.misses == 2
        # Re-pinning the same coordinator hits its own template.
        c = gateway.connect(tenant="acme", coordinator="s0")
        try:
            c.execute(QUERY, (60,))
        finally:
            c.close()
        assert gateway.plan_cache.hits == 1

    def test_degraded_ok_is_execution_time_and_shares_the_template(self):
        """``degraded_ok`` deliberately stays out of the plan-cache key: it
        is threaded per-submission through the workload manager, never
        baked into the template, so splitting the key on it would only
        depress the hit rate."""
        _, _, gateway = make_gateway()
        strict = gateway.connect(tenant="acme", degraded_ok=False)
        lenient = gateway.connect(tenant="bolt", degraded_ok=True)
        try:
            r1 = strict.execute(QUERY, (30,))
            r2 = lenient.execute(QUERY, (30,))
        finally:
            strict.close()
            lenient.close()
        assert r1.prepared is r2.prepared  # one shared template
        assert gateway.plan_cache.misses == 1
        assert gateway.plan_cache.hits == 1
        # On a healthy federation both answers are complete either way.
        assert r1.result.report.degraded is False
        assert r2.result.report.degraded is False

    def test_lru_evicts_oldest_template(self):
        _, _, gateway = make_gateway(plan_cache_size=2)
        statements = [
            "select count(*) from items where v < ?",
            "select count(*) from items where v > ?",
            "select count(*) from items where v = ?",
        ]
        with gateway.connect() as session:
            for sql in statements:
                session.execute(sql, (5,))
            # The first statement was evicted by the third; re-running it
            # must miss again.
            session.execute(statements[0], (5,))
        assert gateway.plan_cache.misses == 4
        assert gateway.plan_cache.evictions == 2
        assert len(gateway.plan_cache) == 2

    def test_capacity_must_be_positive(self):
        _, engine, _ = build_federation()
        with pytest.raises(QueryError):
            PlanCache(engine, capacity=0)

    def test_repartition_invalidates_cached_plan(self):
        catalog, _, gateway = make_gateway()
        with gateway.connect() as session:
            assert session.execute(QUERY, (60,)).rows == [(60,)]
            template = session.execute(QUERY, (60,)).prepared
            assert template.replans == 0
            catalog.repartition("items", 4, [[f"s{i % 3}"] for i in range(4)])
            # Same template object, revalidated and replanned on use.
            outcome = session.execute(QUERY, (60,))
            assert outcome.prepared is template
            assert template.replans == 1
            assert outcome.rows == [(60,)]

    def test_base_table_update_invalidates_cached_plan(self):
        catalog, _, gateway = make_gateway()
        with gateway.connect() as session:
            before = session.execute(QUERY, (999,))
            assert before.rows == [(120,)]
            template = before.prepared
            assert template.replans == 0
            # An update notification bumps the catalog version; the cached
            # template must replan rather than answer from the old plan's
            # access-path choices.
            catalog.notify_table_updated("items")
            after = session.execute(QUERY, (999,))
            assert after.prepared is template
            assert template.replans == 1
            assert after.rows == [(120,)]


class TestSessionPool:
    def test_sessions_are_reused_after_close(self):
        _, _, gateway = make_gateway()
        first = gateway.connect(tenant="acme")
        first.close()
        second = gateway.connect(tenant="acme")
        assert second is first
        assert gateway.sessions_opened == 1
        assert gateway.sessions_reused == 1
        second.close()

    def test_pool_exhaustion_rejects_connect(self):
        _, _, gateway = make_gateway(max_sessions=2)
        a = gateway.connect()
        b = gateway.connect()
        with pytest.raises(QueryError):
            gateway.connect()
        assert gateway.metrics.counter("gateway.sessions.rejected").value == 1
        a.close()
        b.close()
        # Closing frees capacity again.
        gateway.connect().close()

    def test_idle_cap_bounds_the_free_list(self):
        _, _, gateway = make_gateway(max_sessions=4, max_idle=1)
        sessions = [gateway.connect(tenant="acme") for _ in range(3)]
        for session in sessions:
            session.close()
        assert gateway.metrics.gauge("gateway.sessions.pooled").value == 1

    def test_closed_session_rejects_statements(self):
        _, _, gateway = make_gateway()
        session = gateway.connect()
        session.close()
        with pytest.raises(QueryError):
            session.execute(QUERY, (10,))

    def test_active_gauge_tracks_checkouts(self):
        _, _, gateway = make_gateway()
        session = gateway.connect()
        assert gateway.metrics.gauge("gateway.sessions.active").value == 1
        session.close()
        assert gateway.metrics.gauge("gateway.sessions.active").value == 0


class TestPagination:
    def test_page_walk_covers_all_rows_in_order(self):
        _, engine, gateway = make_gateway()
        sql = "select k, v from items order by v"
        direct = engine.query(sql, advance_clock=False).table.rows
        with gateway.connect() as session:
            page = session.execute_paged(sql, limit=50)
            walked = list(page.rows)
            token = page.cursor
            while token is not None:
                page = gateway.fetch_page(token, limit=50)
                walked.extend(page.rows)
                token = page.cursor
        assert walked == direct
        # The cursor was dropped on exhaustion.
        assert gateway.metrics.gauge("gateway.cursors.open").value == 0

    def test_single_page_result_has_no_cursor(self):
        _, _, gateway = make_gateway()
        with gateway.connect() as session:
            page = session.execute_paged(QUERY, (10,), limit=5)
        assert page.rows == [(10,)]
        assert page.cursor is None

    def test_unknown_cursor_raises(self):
        _, _, gateway = make_gateway()
        with pytest.raises(QueryError):
            gateway.fetch_page("c999")

    def test_exhausted_cursor_raises_on_reuse(self):
        _, _, gateway = make_gateway()
        with gateway.connect() as session:
            page = session.execute_paged("select k from items", limit=100)
            token = page.cursor
            last = gateway.fetch_page(token, limit=100)
            assert last.cursor is None
            with pytest.raises(QueryError):
                gateway.fetch_page(token)

    def test_session_release_expires_open_cursors(self):
        """Regression: a cursor token must not survive its session's release.

        Pre-fix, a released (pooled) session's cursors stayed fetchable, so
        the next tenant to re-acquire the pooled session -- or anyone
        holding the token -- could keep paging through the previous
        tenant's result set.
        """
        _, _, gateway = make_gateway()
        session = gateway.connect(tenant="acme")
        page = session.execute_paged("select k from items", limit=10)
        token = page.cursor
        assert token is not None
        session.close()
        # The release expired the cursor: the token is dead...
        with pytest.raises(QueryError):
            gateway.fetch_page(token)
        # ...and no server-side state leaked.
        assert gateway.metrics.gauge("gateway.cursors.open").value == 0
        # The pooled session re-acquired by another tenant starts clean.
        other = gateway.connect(tenant="bolt")
        assert other._cursors == set()
        other.close()

    def test_abandoned_cursors_do_not_leak_across_checkouts(self):
        """Open/release many paged sessions: the cursor table stays empty."""
        _, _, gateway = make_gateway()
        for _ in range(8):
            session = gateway.connect(tenant="acme")
            page = session.execute_paged("select k from items", limit=10)
            assert page.cursor is not None  # multi-page: state was held
            session.close()  # never walked: release must reclaim it
        assert gateway.metrics.gauge("gateway.cursors.open").value == 0
        assert gateway._cursors == {}

    def test_close_cursor_abandons_the_walk(self):
        _, _, gateway = make_gateway()
        with gateway.connect() as session:
            page = session.execute_paged("select k from items", limit=10)
        gateway.close_cursor(page.cursor)
        assert gateway.metrics.gauge("gateway.cursors.open").value == 0
        with pytest.raises(QueryError):
            gateway.fetch_page(page.cursor)

    def test_page_limit_must_be_positive(self):
        _, _, gateway = make_gateway()
        with gateway.connect() as session:
            with pytest.raises(QueryError):
                session.execute_paged("select k from items", limit=0)


class TestTextualFallback:
    def test_like_parameter_falls_back_and_answers(self):
        _, engine, gateway = make_gateway()
        direct = engine.query(
            "select k from items where k like 'k000%'", advance_clock=False
        ).table.rows
        with gateway.connect() as session:
            outcome = session.execute(
                "select k from items where k like ?", ("k000%",)
            )
        assert outcome.rows == direct
        assert outcome.prepared is None  # not served from the plan cache
        assert gateway.plan_cache.misses == 0

    def test_fallback_binding_quotes_strings(self):
        assert (
            bind_sql_text("select * from t where a like ?", ("it's%",))
            == "select * from t where a like 'it''s%'"
        )

    def test_fallback_checks_parameter_count(self):
        with pytest.raises(QueryError):
            bind_sql_text("select * from t where a like ?", ())

    def test_invalid_sql_without_placeholders_raises_parse_error(self):
        _, _, gateway = make_gateway()
        with gateway.connect() as session:
            with pytest.raises(SqlParseError):
                session.execute("select from from items")


class TestParameterErrors:
    def test_too_few_parameters(self):
        _, _, gateway = make_gateway()
        with gateway.connect() as session:
            with pytest.raises(QueryError):
                session.execute(QUERY, ())

    def test_too_many_parameters(self):
        _, _, gateway = make_gateway()
        with gateway.connect() as session:
            with pytest.raises(QueryError):
                session.execute(QUERY, (1, 2))


class TestPreparedDirectEquivalence:
    """Gateway-prepared execution answers exactly like direct engine.query."""

    @settings(max_examples=25, deadline=None)
    @given(
        low=st.integers(min_value=-5, max_value=125),
        span=st.integers(min_value=0, max_value=60),
    )
    def test_between_bindings_match_direct(self, low, span):
        _, engine, gateway = make_gateway()
        sql = "select k, v from items where v between ? and ? order by v"
        direct = engine.query(
            f"select k, v from items where v between {low} and {low + span} "
            "order by v",
            advance_clock=False,
        ).table.rows
        with gateway.connect() as session:
            assert session.execute(sql, (low, low + span)).rows == direct

    @settings(max_examples=25, deadline=None)
    @given(key=st.integers(min_value=0, max_value=130))
    def test_point_lookup_bindings_match_direct(self, key):
        _, engine, gateway = make_gateway()
        literal = f"k{key:04d}"
        direct = engine.query(
            f"select v from items where k = '{literal}'", advance_clock=False
        ).table.rows
        with gateway.connect() as session:
            assert (
                session.execute(
                    "select v from items where k = ?", (literal,)
                ).rows
                == direct
            )

    @settings(max_examples=20, deadline=None)
    @given(
        threshold=st.integers(min_value=-10, max_value=130),
        repeats=st.integers(min_value=1, max_value=3),
    )
    def test_repeated_executions_stay_identical(self, threshold, repeats):
        """The template is immutable: binding N times never drifts."""
        _, engine, gateway = make_gateway()
        direct = engine.query(
            f"select count(*) from items where v < {threshold}",
            advance_clock=False,
        ).table.rows
        with gateway.connect() as session:
            for _ in range(repeats):
                assert session.execute(QUERY, (threshold,)).rows == direct

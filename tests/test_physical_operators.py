"""Tests for the physical operator layer and EXPLAIN ANALYZE.

The tentpole claims: site-side operators (SiteScan, SiteFilter,
SiteProject, PartialAggregate) run at the owning site and charge its
backlog; Ship models the network transfer of the *reduced* rows; every
operator reports rows in/out, seconds and placement.
"""

import pytest

from repro.core import DataType, Field, Schema, Table
from repro.federation import FederatedEngine, FederationCatalog
from repro.sim import SimClock


def make_engine(site_count=4, rows=200, fragments=4):
    clock = SimClock()
    catalog = FederationCatalog(clock)
    names = [catalog.make_site(f"s{i}").name for i in range(site_count)]
    schema = Schema(
        "parts",
        (
            Field("sku", DataType.STRING),
            Field("price", DataType.FLOAT),
            Field("supplier", DataType.STRING),
        ),
    )
    table = Table(
        schema,
        [
            (f"A-{i:03d}", float(i % 100), f"supplier-{i % 5}")
            for i in range(rows)
        ],
    )
    placement = [[names[i % site_count]] for i in range(fragments)]
    catalog.load_fragmented(table, fragments, placement)
    return FederatedEngine(catalog)


def stats_by_name(operators):
    found = {}
    for stats in operators.walk():
        found.setdefault(stats.name, []).append(stats)
    return found


class TestOperatorStats:
    def test_every_operator_reports_rows_and_site(self):
        engine = make_engine()
        result = engine.query(
            "select sku from parts where price > 50", advance_clock=False
        )
        operators = result.report.operators
        assert operators is not None
        for stats in operators.walk():
            assert stats.site != ""
            assert stats.rows_out >= 0
            assert stats.seconds >= 0.0

    def test_site_scan_runs_at_owning_sites(self):
        engine = make_engine()
        result = engine.query("select sku from parts", advance_clock=False)
        named = stats_by_name(result.report.operators)
        scan = named["SiteScan"][0]
        # 4 fragments on 4 distinct sites: the scan's placement names them.
        assert len(scan.site.split(",")) == 4
        assert scan.rows_out == 200

    def test_partial_aggregate_ships_groups_not_rows(self):
        engine = make_engine()
        result = engine.query(
            "select supplier, count(*) as n from parts group by supplier "
            "order by supplier",
            advance_clock=False,
        )
        report = result.report
        named = stats_by_name(report.operators)
        assert "PartialAggregate" in named
        assert "FinalAggregate" in named
        # All 200 rows were read at the sites...
        assert report.rows_fetched == 200
        # ...but at most one partial record per (fragment, supplier) moved.
        assert report.rows_shipped <= 4 * 5
        assert report.rows_shipped < report.rows_fetched
        # And the answer is still exact.
        assert result.table.column("n") == [40, 40, 40, 40, 40]

    def test_site_filter_runs_where_the_rows_live(self):
        engine = make_engine()
        # OR of two comparisons is not source-pushable, but it references a
        # single binding, so the rewrite moves it site-side.
        result = engine.query(
            "select sku from parts where price > 90 or supplier = 'supplier-0'",
            advance_clock=False,
        )
        named = stats_by_name(result.report.operators)
        site_filter = named["SiteFilter"][0]
        assert site_filter.rows_in == 200
        assert site_filter.rows_out < site_filter.rows_in
        coordinator = result.plan.coordinator
        # Filtering was charged to the fragment sites, not (only) the
        # coordinator; the Ship moved only the survivors.
        ship = named["Ship"][0]
        assert ship.rows_in == site_filter.rows_out
        assert coordinator in result.report.site_work

    def test_projection_pruning_narrows_shipped_rows(self):
        engine = make_engine()
        result = engine.query("select sku from parts", advance_clock=False)
        named = stats_by_name(result.report.operators)
        assert "SiteProject" in named
        assert "keep(sku)" in named["SiteProject"][0].detail

    def test_rows_shipped_excludes_coordinator_local_batches(self):
        # Single site: every batch is already at the coordinator.
        engine = make_engine(site_count=1, fragments=2)
        result = engine.query("select sku from parts", advance_clock=False)
        assert result.report.rows_fetched == 200
        assert result.report.rows_shipped == 0


class TestExplainAnalyze:
    def test_explain_analyze_reports_per_operator_accounting(self):
        engine = make_engine()
        text = engine.explain(
            "select supplier, count(*) as n from parts group by supplier",
            analyze=True,
        )
        assert "rows fetched: 200" in text
        assert "rows_in=" in text and "rows_out=" in text
        assert "seconds=" in text
        assert "PartialAggregate" in text
        assert "FinalAggregate" in text
        assert "Ship" in text
        assert "@ " in text  # placement sites

    def test_explain_analyze_executes_without_advancing_clock(self):
        engine = make_engine()
        before = engine.catalog.clock.now()
        engine.explain("select sku from parts", analyze=True)
        assert engine.catalog.clock.now() == before

    def test_plain_explain_shows_site_side_annotations(self):
        engine = make_engine()
        text = engine.explain(
            "select sku from parts where price > 90 or supplier = 'supplier-0'"
        )
        assert "site-filter(" in text
        assert "columns(" in text

    def test_plain_explain_marks_split_aggregates(self):
        engine = make_engine()
        text = engine.explain(
            "select supplier, count(*) as n from parts group by supplier"
        )
        assert "partial at sites" in text


class TestAccountingParity:
    def test_site_work_sums_match_busy_seconds(self):
        engine = make_engine()
        result = engine.query(
            "select sku from parts where price > 50", advance_clock=False
        )
        for name, work in result.report.site_work.items():
            assert work <= engine.catalog.site(name).busy_seconds + 1e-9

    def test_rows_processed_counter_advances(self):
        engine = make_engine()
        before = sum(s.rows_processed for s in engine.catalog.sites.values())
        engine.query("select sku from parts", advance_clock=False)
        after = sum(s.rows_processed for s in engine.catalog.sites.values())
        assert after > before

    def test_metrics_registry_sees_operator_stats(self):
        engine = make_engine()
        engine.query("select sku from parts", advance_clock=False)
        assert engine.metrics.counter("rows.fetched").value == 200
        assert engine.metrics.counter("operator.SiteScan.rows_out").value == 200

    def test_failover_still_works_through_site_scan(self):
        engine = make_engine(site_count=4, fragments=2)
        # Replicate fragment 0 onto a second site so a failover target exists.
        from repro.connect.source import StaticSource

        entry = engine.catalog.entry("parts")
        fragment = entry.fragments[0]
        donor_site = fragment.replica_sites()[0]
        donor = engine.catalog.site(donor_site).source(
            fragment.replicas[donor_site]
        )
        copy = StaticSource("parts.f0@s3", donor.fetch().table)
        engine.catalog.place_replica(fragment, "s3", copy)

        # Plan while everything is up, then kill a chosen site: the SiteScan
        # reroutes to the surviving replica mid-execution.
        from repro.sql import build_plan, parse_sql

        statement = parse_sql("select sku from parts")
        plan = build_plan(
            statement, engine.catalog.binding_fields({"parts": "parts"})
        )
        physical = engine.optimizer.optimize(plan)
        chosen = physical.assignments["parts"].choices[0].site_name
        engine.catalog.site(chosen).up = False
        if physical.coordinator == chosen:
            physical.coordinator = "s3"
        table, report = engine.executor.execute(physical)
        assert report.failovers >= 1
        assert len(table) == 200


class TestSiteOperatorProtocol:
    def test_site_operator_refuses_direct_iteration(self):
        from repro.core.errors import QueryError
        from repro.federation.physical import SiteScan
        from repro.sql.planner import ScanNode

        operator = SiteScan(ScanNode("parts", "parts"))
        operator._closed = False
        operator._batches = []
        with pytest.raises(QueryError):
            operator.next()

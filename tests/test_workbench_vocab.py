"""Tests for synonym tables, taxonomies and the semi-automatic matchers."""

import pytest

from repro.core import DataType, Field, Schema
from repro.core.errors import TaxonomyError
from repro.workbench import (
    MatchSession,
    SchemaMatcher,
    SynonymTable,
    Taxonomy,
    TaxonomyMatcher,
)


class TestSynonymTable:
    def make(self):
        table = SynonymTable()
        table.add_group(["black ink", "india ink", "fountain pen ink, black"])
        table.add_group(["bolt", "hex bolt"], canonical="bolt")
        return table

    def test_expand_returns_whole_group(self):
        table = self.make()
        assert "india ink" in table.expand("black ink")
        assert table.expand("BLACK  INK") == table.expand("black ink")

    def test_expand_unknown_term_returns_itself(self):
        assert self.make().expand("stapler") == {"stapler"}

    def test_canonical(self):
        table = self.make()
        assert table.canonical("india ink") == "black ink"
        assert table.canonical("hex bolt") == "bolt"
        assert table.canonical("unknown") == "unknown"

    def test_are_synonyms(self):
        table = self.make()
        assert table.are_synonyms("india ink", "black ink")
        assert not table.are_synonyms("india ink", "bolt")
        assert table.are_synonyms("same", "same")

    def test_merge_groups(self):
        table = SynonymTable()
        table.add_group(["a", "b"])
        table.add_group(["c", "d"])
        table.add_group(["b", "c"])  # merges both groups
        assert table.are_synonyms("a", "d")
        assert len(table) == 1

    def test_explicit_canonical_wins_on_merge(self):
        table = SynonymTable()
        table.add_group(["a", "b"])
        table.add_group(["b", "c"], canonical="c")
        assert table.canonical("a") == "c"

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            SynonymTable().add_group(["  "])

    def test_contains(self):
        table = self.make()
        assert "India Ink" in table
        assert "stapler" not in table


def build_master():
    master = Taxonomy("unspsc")
    master.add_category("44", "Office supplies")
    master.add_category("44.10", "Ink and lead refills", "44")
    master.add_category("44.10.1", "India ink", "44.10")
    master.add_category("44.10.2", "Pencil lead", "44.10")
    master.add_category("27", "Tools")
    master.add_category("27.11", "Power drills", "27")
    return master


class TestTaxonomy:
    def test_hierarchy_navigation(self):
        master = build_master()
        node = master.node("44.10.1")
        assert [a.code for a in node.ancestors()] == ["44.10", "44"]
        assert node.path == ["Office supplies", "Ink and lead refills", "India ink"]

    def test_descendants(self):
        master = build_master()
        codes = {d.code for d in master.node("44").descendants()}
        assert codes == {"44.10", "44.10.1", "44.10.2"}

    def test_browse(self):
        master = build_master()
        assert {n.code for n in master.browse()} == {"44", "27"}
        assert [n.code for n in master.browse("44.10")] == ["44.10.1", "44.10.2"]

    def test_search_labels(self):
        master = build_master()
        assert {n.code for n in master.search_labels("ink")} == {"44.10", "44.10.1"}

    def test_duplicate_code_rejected(self):
        master = build_master()
        with pytest.raises(TaxonomyError):
            master.add_category("44", "Again")

    def test_unknown_parent_rejected(self):
        with pytest.raises(TaxonomyError):
            build_master().add_category("x", "X", parent_code="ghost")

    def test_items_under_includes_descendants(self):
        master = build_master()
        master.assign("44.10.1", "p-ink")
        master.assign("44.10.2", "p-lead")
        master.assign("27.11", "p-drill")
        assert master.items_under("44.10") == {"p-ink", "p-lead"}
        assert master.items_under("44") == {"p-ink", "p-lead"}
        assert master.assigned_to("44.10") == set()

    def test_assign_validates_code(self):
        with pytest.raises(TaxonomyError):
            build_master().assign("ghost", "p1")

    def test_expand_query_reaches_descendants(self):
        master = build_master()
        terms = master.expand_query("refills")
        assert "india ink" in terms
        assert "pencil lead" in terms

    def test_expand_query_no_match(self):
        assert build_master().expand_query("zeppelin") == set()


def build_source():
    source = Taxonomy("acme")
    source.add_category("S1", "Office Supplies")
    source.add_category("S2", "Ink & Lead Refills", "S1")
    source.add_category("S3", "Black India Ink", "S2")
    source.add_category("S9", "Safety Goggles")
    return source


class TestTaxonomyMatcher:
    def test_suggestions_find_obvious_matches(self):
        matcher = TaxonomyMatcher(build_master())
        suggestions = {s.source_code: s for s in matcher.suggest(build_source())}
        assert suggestions["S1"].best == "44"
        assert suggestions["S1"].status == "auto"
        assert suggestions["S3"].best == "44.10.1"

    def test_unmatched_category_flagged(self):
        matcher = TaxonomyMatcher(build_master())
        suggestions = {s.source_code: s for s in matcher.suggest(build_source())}
        assert suggestions["S9"].status == "unmatched"

    def test_instance_overlap_signal(self):
        master = build_master()
        matcher = TaxonomyMatcher(master, name_weight=0.0, structure_weight=0.0,
                                  instance_weight=1.0, review_threshold=0.1)
        source = Taxonomy("s")
        source.add_category("X", "Completely Different Label")
        suggestions = matcher.suggest(
            source,
            source_items={"X": {"black ink 30ml", "india ink"}},
            master_items={"44.10.1": {"black ink 30ml", "india ink"},
                          "27.11": {"hammer drill"}},
        )
        assert suggestions[0].best == "44.10.1"

    def test_conflict_when_candidates_too_close(self):
        master = Taxonomy("m")
        master.add_category("A", "ink supplies")
        master.add_category("B", "ink supplies ltd")
        matcher = TaxonomyMatcher(master, conflict_margin=0.2, review_threshold=0.2)
        source = Taxonomy("s")
        source.add_category("X", "ink supplies")
        suggestion = matcher.suggest(source)[0]
        assert suggestion.status == "conflict"


class TestMatchSession:
    def make_session(self):
        matcher = TaxonomyMatcher(build_master())
        suggestions = matcher.suggest(build_source())
        return MatchSession(build_master(), suggestions)

    def test_autos_applied_without_human(self):
        session = self.make_session()
        assert "S1" in session.mapping()
        assert session.human_decisions == 0

    def test_pending_sorted_hardest_first(self):
        session = self.make_session()
        pending = session.pending()
        assert pending[0].source_code == "S9"  # unmatched: lowest score

    def test_accept_and_complete(self):
        session = self.make_session()
        for suggestion in list(session.pending()):
            if suggestion.best is not None:
                session.accept(suggestion.source_code)
            else:
                session.reject(suggestion.source_code)
        assert session.is_complete()
        assert session.human_decisions == len(
            [s for s in session.suggestions.values() if s.status != "auto"]
        )

    def test_edit_overrides(self):
        session = self.make_session()
        session.edit("S9", "27.11")
        assert session.mapping()["S9"] == "27.11"

    def test_edit_validates_master_code(self):
        session = self.make_session()
        with pytest.raises(TaxonomyError):
            session.edit("S9", "ghost")

    def test_accept_without_candidate_rejected(self):
        session = self.make_session()
        with pytest.raises(TaxonomyError):
            session.accept("S9")

    def test_unknown_source_code_rejected(self):
        session = self.make_session()
        with pytest.raises(TaxonomyError):
            session.accept("ghost")

    def test_reject_leaves_mapping_empty(self):
        session = self.make_session()
        session.reject("S9")
        assert "S9" not in session.mapping()
        assert session.human_decisions == 1


class TestSchemaMatcher:
    def test_matches_similar_field_names(self):
        source = Schema("s", (Field("part_number", DataType.STRING),
                              Field("unit_price", DataType.FLOAT),
                              Field("weird_blob", DataType.STRING)))
        target = Schema("t", (Field("part_num", DataType.STRING),
                              Field("price", DataType.FLOAT),
                              Field("qty", DataType.INTEGER)))
        suggestions = {s.source_code: s for s in SchemaMatcher().suggest(source, target)}
        assert suggestions["part_number"].best == "part_num"
        assert suggestions["unit_price"].best == "price"

    def test_type_agreement_breaks_name_ties(self):
        source = Schema("s", (Field("amount", DataType.FLOAT),))
        target = Schema("t", (Field("amounts", DataType.STRING),
                              Field("amount_x", DataType.FLOAT)))
        suggestion = SchemaMatcher().suggest(source, target)[0]
        assert suggestion.best == "amount_x"

"""Tests for the semantic cache wired into the federated engine."""

import pytest

from repro.core import DataType, Field, Schema, Table
from repro.federation import FederatedEngine, FederationCatalog, SemanticCache
from repro.federation.engine import LIVE_ONLY
from repro.sim import SimClock


def make_engine(cache_staleness=None):
    clock = SimClock()
    catalog = FederationCatalog(clock)
    names = [catalog.make_site(f"s{i}").name for i in range(2)]
    schema = Schema(
        "parts",
        (Field("sku", DataType.STRING), Field("price", DataType.FLOAT)),
    )
    table = Table(schema, [(f"A-{i}", float(i)) for i in range(100)])
    catalog.load_fragmented(table, 1, [names], scan_cost_seconds=1.0)
    cache = SemanticCache(clock, max_rows=10_000, max_staleness=cache_staleness)
    return FederatedEngine(catalog, cache=cache), cache


class TestEngineCache:
    def test_second_identical_query_hits_cache(self):
        engine, cache = make_engine()
        first = engine.query("select sku from parts where price > 90")
        second = engine.query("select sku from parts where price > 90")
        assert first.table == second.table
        assert second.plan.assignments["parts"].kind == "cache"
        assert cache.hits >= 1

    def test_cache_hit_is_much_cheaper(self):
        engine, _ = make_engine()
        first = engine.query("select sku from parts where price > 90")
        second = engine.query("select sku from parts where price > 90")
        assert second.report.response_seconds < first.report.response_seconds / 5

    def test_narrower_query_served_from_wider_region(self):
        engine, cache = make_engine()
        engine.query("select sku from parts")  # caches the whole table
        narrow = engine.query("select sku from parts where price > 95")
        assert narrow.plan.assignments["parts"].kind == "cache"
        assert len(narrow.table) == 4

    def test_wider_query_misses_narrow_region(self):
        engine, _ = make_engine()
        engine.query("select sku from parts where price > 95")
        wide = engine.query("select sku from parts")
        assert wide.plan.assignments["parts"].kind == "fragments"
        assert len(wide.table) == 100

    def test_live_only_bypasses_cache(self):
        engine, _ = make_engine()
        engine.query("select sku from parts")
        live = engine.query("select sku from parts", max_staleness=LIVE_ONLY)
        assert live.plan.assignments["parts"].kind == "fragments"

    def test_staleness_bound_respected(self):
        engine, _ = make_engine()
        engine.query("select sku from parts")
        engine.catalog.clock.advance(100.0)
        stale_ok = engine.query("select sku from parts", max_staleness=200.0)
        assert stale_ok.plan.assignments["parts"].kind == "cache"
        assert stale_ok.report.staleness_seconds == pytest.approx(100.0, abs=3.0)
        too_stale = engine.query("select sku from parts", max_staleness=50.0)
        assert too_stale.plan.assignments["parts"].kind == "fragments"

    def test_cached_answer_reports_age(self):
        engine, _ = make_engine()
        engine.query("select sku from parts")
        engine.catalog.clock.advance(30.0)
        result = engine.query("select sku from parts")
        assert result.report.staleness_seconds == pytest.approx(30.0, abs=3.0)

    def test_no_cache_configured_is_fine(self):
        clock = SimClock()
        catalog = FederationCatalog(clock)
        catalog.make_site("s0")
        schema = Schema("t", (Field("a", DataType.INTEGER),))
        catalog.load_fragmented(Table(schema, [(1,)]), 1, [["s0"]])
        engine = FederatedEngine(catalog)  # cache=None
        assert len(engine.query("select a from t").table) == 1

    def test_invalidation_forces_refetch(self):
        engine, cache = make_engine()
        engine.query("select sku from parts")
        cache.invalidate_table("parts")
        result = engine.query("select sku from parts")
        assert result.plan.assignments["parts"].kind == "fragments"

    def test_match_queries_not_cached(self):
        engine, cache = make_engine()
        data = Table(
            Schema("parts", engine.catalog.entry("parts").schema.fields),
            [(f"A-{i}", float(i)) for i in range(100)],
        )
        engine.catalog.build_text_index("parts", "sku", data, "sku")
        engine.query("select sku from parts where match(sku, 'A-7')")
        # The text-filtered result must not be stored under the bare region.
        follow_up = engine.query("select sku from parts")
        assert len(follow_up.table) == 100

"""Tests for the semantic cache wired into the federated engine."""

import random

import pytest

from repro.connect.source import LiveSource
from repro.core import DataType, Field, Schema, Table
from repro.federation import (
    CentralizedOptimizer,
    FederatedEngine,
    FederationCatalog,
    PolicyOptimizer,
    RoundRobinPolicy,
    SemanticCache,
)
from repro.federation.engine import LIVE_ONLY
from repro.sim import SimClock
from repro.workloads.hotels import generate_hotels


def make_engine(cache_staleness=None):
    clock = SimClock()
    catalog = FederationCatalog(clock)
    names = [catalog.make_site(f"s{i}").name for i in range(2)]
    schema = Schema(
        "parts",
        (Field("sku", DataType.STRING), Field("price", DataType.FLOAT)),
    )
    table = Table(schema, [(f"A-{i}", float(i)) for i in range(100)])
    catalog.load_fragmented(table, 1, [names], scan_cost_seconds=1.0)
    cache = SemanticCache(clock, max_rows=10_000, max_staleness=cache_staleness)
    return FederatedEngine(catalog, cache=cache), cache


class TestEngineCache:
    def test_second_identical_query_hits_cache(self):
        engine, cache = make_engine()
        first = engine.query("select sku from parts where price > 90")
        second = engine.query("select sku from parts where price > 90")
        assert first.table == second.table
        assert second.plan.assignments["parts"].kind == "cache"
        assert cache.hits >= 1

    def test_cache_hit_is_much_cheaper(self):
        engine, _ = make_engine()
        first = engine.query("select sku from parts where price > 90")
        second = engine.query("select sku from parts where price > 90")
        assert second.report.response_seconds < first.report.response_seconds / 5

    def test_narrower_query_served_from_wider_region(self):
        engine, cache = make_engine()
        engine.query("select sku from parts")  # caches the whole table
        narrow = engine.query("select sku from parts where price > 95")
        assert narrow.plan.assignments["parts"].kind == "cache"
        assert len(narrow.table) == 4

    def test_wider_query_misses_narrow_region(self):
        engine, _ = make_engine()
        engine.query("select sku from parts where price > 95")
        wide = engine.query("select sku from parts")
        assert wide.plan.assignments["parts"].kind == "fragments"
        assert len(wide.table) == 100

    def test_live_only_bypasses_cache(self):
        engine, _ = make_engine()
        engine.query("select sku from parts")
        live = engine.query("select sku from parts", max_staleness=LIVE_ONLY)
        assert live.plan.assignments["parts"].kind == "fragments"

    def test_staleness_bound_respected(self):
        engine, _ = make_engine()
        engine.query("select sku from parts")
        engine.catalog.clock.advance(100.0)
        stale_ok = engine.query("select sku from parts", max_staleness=200.0)
        assert stale_ok.plan.assignments["parts"].kind == "cache"
        assert stale_ok.report.staleness_seconds == pytest.approx(100.0, abs=3.0)
        too_stale = engine.query("select sku from parts", max_staleness=50.0)
        assert too_stale.plan.assignments["parts"].kind == "fragments"

    def test_cached_answer_reports_age(self):
        engine, _ = make_engine()
        engine.query("select sku from parts")
        engine.catalog.clock.advance(30.0)
        result = engine.query("select sku from parts")
        assert result.report.staleness_seconds == pytest.approx(30.0, abs=3.0)

    def test_no_cache_configured_is_fine(self):
        clock = SimClock()
        catalog = FederationCatalog(clock)
        catalog.make_site("s0")
        schema = Schema("t", (Field("a", DataType.INTEGER),))
        catalog.load_fragmented(Table(schema, [(1,)]), 1, [["s0"]])
        engine = FederatedEngine(catalog)  # cache=None
        assert len(engine.query("select a from t").table) == 1

    def test_invalidation_forces_refetch(self):
        engine, cache = make_engine()
        engine.query("select sku from parts")
        cache.invalidate_table("parts")
        result = engine.query("select sku from parts")
        assert result.plan.assignments["parts"].kind == "fragments"

    def test_implication_hit_applies_residual(self):
        engine, cache = make_engine()
        engine.query("select sku from parts where price < 50")
        narrow = engine.query("select sku from parts where price < 30")
        assert narrow.plan.assignments["parts"].kind == "cache"
        assert len(narrow.table) == 30
        assert cache.implication_hits == 1 and cache.verbatim_hits == 0

    def test_explain_renders_cache_access_path(self):
        engine, _ = make_engine()
        engine.query("select sku from parts where price < 50")
        text = engine.explain("select sku from parts where price < 20")
        assert "cache(region price < 50, age" in text
        analyzed = engine.explain(
            "select sku from parts where price < 20", analyze=True
        )
        assert "cache(region" in analyzed
        assert "rows_out=20" in analyzed

    def test_entry_age_measured_from_fetch_not_store(self):
        # Regression: stamping as_of at store time (after the modeled query
        # latency has elapsed) made every entry look newborn, understating
        # staleness by the fetch cost.
        engine, cache = make_engine()
        result = engine.query("select sku from parts")
        assert result.report.response_seconds >= 1.0  # scan cost is 1s
        ages = cache.entry_ages()
        assert len(ages) == 1
        assert ages[0] == pytest.approx(result.report.response_seconds, abs=0.5)
        assert ages[0] > 0.9

    def test_base_update_invalidates_through_catalog(self):
        clock = SimClock()
        catalog = FederationCatalog(clock)
        catalog.make_site("s0")
        schema = Schema("inv", (Field("qty", DataType.INTEGER),))
        rows = [{"qty": 1}, {"qty": 2}]
        source = LiveSource("inv@s0", schema, lambda: list(rows), cost_seconds=0.5)
        catalog.register_external_table("inv", source, "s0")
        cache = SemanticCache(clock)
        engine = FederatedEngine(catalog, cache=cache)

        first = engine.query("select qty from inv")
        assert len(first.table) == 2
        rows.append({"qty": 3})
        catalog.notify_table_updated("inv")
        second = engine.query("select qty from inv")
        assert second.plan.assignments["inv"].kind == "fragments"
        assert len(second.table) == 3
        assert cache.invalidations == 1

    def test_hotel_write_invalidates_availability_regions(self):
        clock = SimClock()
        catalog = FederationCatalog(clock)
        market = generate_hotels(seed=3, chain_count=4, hotels_per_chain=2)
        sites = {chain: catalog.make_site(f"res-{i}").name
                 for i, chain in enumerate(market.chains)}
        market.register_sources(catalog, sites)
        cache = SemanticCache(clock)
        engine = FederatedEngine(catalog, cache=cache)

        sql = "select hotel_id from hotel_availability where rooms_available > 0"
        engine.query(sql)
        repeat = engine.query(sql)
        assert repeat.plan.assignments["hotel_availability"].kind == "cache"
        market.apply_random_update(random.Random(7))
        after_write = engine.query(sql)
        assert after_write.plan.assignments["hotel_availability"].kind == "fragments"
        assert set(after_write.table.column("hotel_id")) == {
            h["hotel_id"] for h in market.hotels if h["rooms_available"] > 0
        }

    @pytest.mark.parametrize("make_optimizer", [
        lambda catalog: CentralizedOptimizer(catalog),
        lambda catalog: PolicyOptimizer(catalog, RoundRobinPolicy()),
    ])
    def test_cache_is_an_access_path_in_every_optimizer(self, make_optimizer):
        clock = SimClock()
        catalog = FederationCatalog(clock)
        names = [catalog.make_site(f"s{i}").name for i in range(2)]
        schema = Schema(
            "parts",
            (Field("sku", DataType.STRING), Field("price", DataType.FLOAT)),
        )
        table = Table(schema, [(f"A-{i}", float(i)) for i in range(100)])
        catalog.load_fragmented(table, 1, [names], scan_cost_seconds=1.0)
        cache = SemanticCache(clock, max_rows=10_000)
        engine = FederatedEngine(
            catalog, optimizer=make_optimizer(catalog), cache=cache
        )
        engine.query("select sku from parts where price < 50")
        hit = engine.query("select sku from parts where price < 30")
        assert hit.plan.assignments["parts"].kind == "cache"
        assert len(hit.table) == 30

    def test_match_queries_not_cached(self):
        engine, cache = make_engine()
        data = Table(
            Schema("parts", engine.catalog.entry("parts").schema.fields),
            [(f"A-{i}", float(i)) for i in range(100)],
        )
        engine.catalog.build_text_index("parts", "sku", data, "sku")
        engine.query("select sku from parts where match(sku, 'A-7')")
        # The text-filtered result must not be stored under the bare region.
        follow_up = engine.query("select sku from parts")
        assert len(follow_up.table) == 100

"""Tests for the IR substrate: tokenizing, fuzzy matching, index, search."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ir import (
    CatalogSearch,
    InvertedIndex,
    SearchMode,
    combined_similarity,
    levenshtein,
    levenshtein_similarity,
    ngram_jaccard,
    ngrams,
    tokenize,
)
from repro.ir.fuzzy import best_matches, token_set_similarity


class TestTokenize:
    def test_lowercase_and_split(self):
        assert tokenize("Black India-Ink, 30ml!") == ["black", "india", "ink", "30ml"]

    def test_empty(self):
        assert tokenize("") == []
        assert tokenize("!!!") == []

    def test_ngrams_padded(self):
        grams = ngrams("ink")
        assert "$in" in grams
        assert "nk$" in grams

    def test_ngrams_short_term(self):
        assert ngrams("a") == {"$a$"}
        assert ngrams("") == set()


class TestLevenshtein:
    @pytest.mark.parametrize(
        "a,b,expected",
        [("", "", 0), ("abc", "abc", 0), ("abc", "abd", 1), ("", "xyz", 3),
         ("kitten", "sitting", 3), ("drlls", "drills", 1)],
    )
    def test_known_distances(self, a, b, expected):
        assert levenshtein(a, b) == expected

    @given(st.text(max_size=20), st.text(max_size=20))
    def test_symmetry(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(st.text(max_size=15), st.text(max_size=15), st.text(max_size=15))
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @given(st.text(max_size=20))
    def test_identity(self, a):
        assert levenshtein(a, a) == 0

    def test_similarity_bounds(self):
        assert levenshtein_similarity("abc", "abc") == 1.0
        assert levenshtein_similarity("", "") == 1.0
        assert levenshtein_similarity("abc", "xyz") == 0.0


class TestNgramJaccard:
    def test_identical(self):
        assert ngram_jaccard("drill", "drill") == 1.0

    def test_disjoint(self):
        assert ngram_jaccard("aaaa", "zzzz") == 0.0

    def test_empty_cases(self):
        assert ngram_jaccard("", "") == 1.0
        assert ngram_jaccard("abc", "") == 0.0

    @given(st.text(max_size=20), st.text(max_size=20))
    def test_bounded(self, a, b):
        assert 0.0 <= ngram_jaccard(a, b) <= 1.0


class TestCombinedSimilarity:
    def test_word_order_is_free(self):
        assert combined_similarity("ink, black", "black ink") == pytest.approx(1.0)

    def test_paper_typo_example(self):
        # "drlls: crdlss" should look like "cordless drills"
        assert combined_similarity("drlls: crdlss", "cordless drills") > 0.6
        assert combined_similarity("drlls: crdlss", "steel beams") < 0.3

    def test_token_set_similarity(self):
        assert token_set_similarity("black india ink", "india ink black") == 1.0
        assert token_set_similarity("black ink", "blue ink") == pytest.approx(1 / 3)

    def test_best_matches_ranked_and_deterministic(self):
        candidates = ["cordless drills", "corded drills", "steel beams"]
        ranked = best_matches("drlls crdlss", candidates, limit=2)
        assert ranked[0][0] == "cordless drills"
        assert len(ranked) == 2

    def test_best_matches_minimum_filter(self):
        assert best_matches("ink", ["steel beams"], minimum=0.9) == []


def build_index():
    index = InvertedIndex()
    index.add("p1", "black india ink 30ml bottle")
    index.add("p2", "blue ink cartridge")
    index.add("p3", "cordless drill 18v")
    index.add("p4", "corded drill press")
    index.add("p5", "mechanical pencil lead refills")
    return index


class TestInvertedIndex:
    def test_exact_search_ranks_matching_docs(self):
        index = build_index()
        hits = index.search("ink")
        assert {h.doc_id for h in hits} == {"p1", "p2"}

    def test_multi_term_query_accumulates(self):
        index = build_index()
        hits = index.search("black ink")
        assert hits[0].doc_id == "p1"

    def test_unknown_term_no_hits(self):
        assert build_index().search("zeppelin") == []

    def test_empty_query(self):
        assert build_index().search("") == []

    def test_reindex_replaces(self):
        index = build_index()
        index.add("p1", "stapler")
        assert index.search("ink") and all(h.doc_id != "p1" for h in index.search("ink"))
        assert index.search("stapler")[0].doc_id == "p1"

    def test_remove(self):
        index = build_index()
        index.remove("p2")
        assert {h.doc_id for h in index.search("ink")} == {"p1"}
        assert index.document_count == 4
        index.remove("ghost")  # no-op

    def test_fuzzy_expand_finds_typo_targets(self):
        index = build_index()
        assert "drill" in index.fuzzy_expand("drlls")
        assert "cordless" in index.fuzzy_expand("crdlss")

    def test_fuzzy_expand_exact_term_ranked_first(self):
        expanded = build_index().fuzzy_expand("ink")
        assert expanded[0] == "ink"

    def test_fuzzy_expand_respects_minimum(self):
        assert build_index().fuzzy_expand("zzzzqqq") == []

    def test_idf_prefers_rarer_terms(self):
        index = InvertedIndex()
        index.add("a", "widget common common common")
        index.add("b", "common thing")
        index.add("c", "common stuff")
        hits = index.search("widget common")
        assert hits[0].doc_id == "a"


class FakeSynonyms:
    def __init__(self, groups):
        self.groups = groups

    def expand(self, term):
        for group in self.groups:
            if term in group:
                return set(group)
        return {term}


class TestCatalogSearch:
    def make(self):
        search = CatalogSearch(
            build_index(),
            synonyms=FakeSynonyms([{"india ink", "black ink"}]),
            taxonomy_expander=lambda q: {"lead refills", "ink"} if "refill" in q else set(),
        )
        return search

    def test_exact_mode_misses_synonym(self):
        search = self.make()
        hits = search.search("india ink", mode=SearchMode.EXACT)
        assert {h.doc_id for h in hits} == {"p1", "p2"}  # matches "ink"+"india"

    def test_synonym_mode_equates_india_and_black_ink(self):
        search = self.make()
        india = {h.doc_id for h in search.search("india ink", mode=SearchMode.SYNONYM)}
        black = {h.doc_id for h in search.search("black ink", mode=SearchMode.SYNONYM)}
        assert india == black

    def test_fuzzy_mode_handles_typos(self):
        search = self.make()
        hits = search.search("drlls: crdlss", mode=SearchMode.FUZZY)
        assert hits and hits[0].doc_id in ("p3", "p4")

    def test_exact_mode_misses_typos(self):
        search = self.make()
        assert search.search("drlls: crdlss", mode=SearchMode.EXACT) == []

    def test_full_mode_uses_taxonomy(self):
        search = self.make()
        hits = search.search("refill", mode=SearchMode.FULL)
        assert "p5" in {h.doc_id for h in hits}

    def test_expand_query_terms_deduplicated(self):
        search = self.make()
        terms = search.expand_query("ink ink", SearchMode.FULL)
        assert terms.count("ink") == 1

    def test_add_document_via_facade(self):
        search = self.make()
        search.add_document("p9", "fountain pen ink, black")
        hits = search.search("black ink", mode=SearchMode.SYNONYM)
        assert "p9" in {h.doc_id for h in hits}

"""Unit tests for the XPath subset and XSLT-like transformer."""

import pytest

from repro.xmlkit import XmlElement, XmlTransformer, XPathError, parse_xml, xpath

CATALOG = parse_xml(
    """
<catalog market="mro">
  <supplier name="acme">
    <item sku="A-1"><name>black ink</name><price currency="USD">5.00</price></item>
    <item sku="A-2"><name>blue ink</name><price currency="USD">6.00</price></item>
  </supplier>
  <supplier name="bolt-co">
    <item sku="B-1" featured="yes"><name>hex bolt</name><price currency="FRF">30.00</price></item>
  </supplier>
</catalog>
"""
)


class TestPaths:
    def test_absolute_path(self):
        items = xpath(CATALOG, "/catalog/supplier/item")
        assert len(items) == 3

    def test_absolute_path_wrong_root_is_empty(self):
        assert xpath(CATALOG, "/warehouse/item") == []

    def test_relative_path_from_root_children(self):
        suppliers = xpath(CATALOG, "supplier")
        assert [s.get("name") for s in suppliers] == ["acme", "bolt-co"]

    def test_descendant_axis(self):
        assert len(xpath(CATALOG, "//item")) == 3
        assert len(xpath(CATALOG, "//name")) == 3

    def test_descendant_in_middle(self):
        prices = xpath(CATALOG, "/catalog//price")
        assert len(prices) == 3

    def test_wildcard(self):
        assert len(xpath(CATALOG, "/catalog/*")) == 2

    def test_text_extraction(self):
        names = xpath(CATALOG, "//item/name/text()")
        assert names == ["black ink", "blue ink", "hex bolt"]

    def test_attribute_extraction(self):
        skus = xpath(CATALOG, "//item/@sku")
        assert skus == ["A-1", "A-2", "B-1"]

    def test_dot_and_dotdot(self):
        names = xpath(CATALOG, "//price/../name/text()")
        assert len(names) == 3
        self_items = xpath(CATALOG, "//item/.")
        assert len(self_items) == 3


class TestPredicates:
    def test_attr_equals(self):
        items = xpath(CATALOG, "//supplier[@name='acme']/item")
        assert len(items) == 2

    def test_attr_exists(self):
        assert len(xpath(CATALOG, "//item[@featured]")) == 1

    def test_position(self):
        first = xpath(CATALOG, "/catalog/supplier[1]")
        assert first[0].get("name") == "acme"

    def test_last(self):
        last = xpath(CATALOG, "/catalog/supplier[last()]")
        assert last[0].get("name") == "bolt-co"

    def test_position_out_of_range_is_empty(self):
        assert xpath(CATALOG, "/catalog/supplier[9]") == []

    def test_child_exists(self):
        assert len(xpath(CATALOG, "//item[name]")) == 3

    def test_child_text_equals(self):
        items = xpath(CATALOG, "//item[name='hex bolt']")
        assert items[0].get("sku") == "B-1"

    def test_text_equals(self):
        names = xpath(CATALOG, "//name[text()='blue ink']")
        assert len(names) == 1

    def test_contains_attr(self):
        items = xpath(CATALOG, "//item[contains(@sku,'A-')]")
        assert len(items) == 2

    def test_contains_text(self):
        names = xpath(CATALOG, "//name[contains(text(),'ink')]")
        assert len(names) == 2

    def test_chained_predicates(self):
        items = xpath(CATALOG, "//item[contains(@sku,'A-')][2]")
        assert items[0].get("sku") == "A-2"


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        ["", "/", "//", "//item[", "//item[foo(]", "//@sku/name", "//text()/x"],
    )
    def test_invalid_paths_rejected(self, bad):
        with pytest.raises(XPathError):
            xpath(CATALOG, bad)


class TestTransformer:
    def test_identity_by_default(self):
        transformer = XmlTransformer()
        result = transformer.transform_document(CATALOG)
        assert result == CATALOG
        assert result is not CATALOG

    def test_single_rule_rewrites_one_tag(self):
        transformer = XmlTransformer()

        @transformer.rule("price")
        def dollars_only(element, t):
            rewritten = XmlElement("price", {"currency": "USD"})
            rewritten.append(element.text)
            return [rewritten]

        result = transformer.transform_document(CATALOG)
        currencies = {p.get("currency") for p in xpath(result, "//price")}
        assert currencies == {"USD"}
        # Everything else untouched.
        assert len(xpath(result, "//item")) == 3

    def test_rule_can_drop_elements(self):
        transformer = XmlTransformer()
        transformer.add_rule("supplier[@name='bolt-co']", lambda e, t: [])
        result = transformer.transform_document(CATALOG)
        assert len(xpath(result, "//supplier")) == 1

    def test_rule_can_rename_and_restructure(self):
        transformer = XmlTransformer()

        @transformer.rule("item")
        def to_product(element, t):
            product = XmlElement("product", {"id": element.get("sku") or ""})
            for node in t.apply_children(element):
                product.append(node)
            return [product]

        result = transformer.transform_document(CATALOG)
        assert len(xpath(result, "//product")) == 3
        assert xpath(result, "//product/@id") == ["A-1", "A-2", "B-1"]

    def test_first_matching_rule_wins(self):
        transformer = XmlTransformer()
        transformer.add_rule("name", lambda e, t: [XmlElement("first")])
        transformer.add_rule("name", lambda e, t: [XmlElement("second")])
        result = transformer.transform_document(CATALOG)
        assert len(xpath(result, "//first")) == 3
        assert xpath(result, "//second") == []

    def test_star_rule_matches_everything(self):
        transformer = XmlTransformer()
        counter = {"n": 0}

        def count(element, t):
            counter["n"] += 1
            copy = XmlElement(element.tag, dict(element.attrs))
            for node in t.apply_children(element):
                copy.append(node)
            return [copy]

        transformer.add_rule("*", count)
        transformer.transform_document(CATALOG)
        # catalog + 2 suppliers + 3 items + 3 names + 3 prices
        assert counter["n"] == 12

    def test_document_transform_requires_single_root(self):
        transformer = XmlTransformer()
        transformer.add_rule("catalog", lambda e, t: [XmlElement("a"), XmlElement("b")])
        with pytest.raises(ValueError):
            transformer.transform_document(CATALOG)

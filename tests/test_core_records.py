"""Unit tests for Row and Table."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import DataType, Field, Schema, SchemaError, Table


def parts_schema():
    return Schema(
        "parts",
        (
            Field("part_id", DataType.STRING, nullable=False),
            Field("name", DataType.STRING),
            Field("qty", DataType.INTEGER),
        ),
    )


def parts_table():
    return Table(
        parts_schema(),
        [("p1", "bolt", 5), ("p2", "nut", 10), ("p3", "washer", None)],
    )


class TestRow:
    def test_name_based_access(self):
        row = next(iter(parts_table()))
        assert row["part_id"] == "p1"
        assert row["qty"] == 5

    def test_mapping_protocol(self):
        row = next(iter(parts_table()))
        assert set(row) == {"part_id", "name", "qty"}
        assert len(row) == 3
        assert row.to_dict() == {"part_id": "p1", "name": "bolt", "qty": 5}

    def test_values_tuple(self):
        row = next(iter(parts_table()))
        assert row.values_tuple == ("p1", "bolt", 5)


class TestTableConstruction:
    def test_rows_validated_on_construction(self):
        with pytest.raises(SchemaError):
            Table(parts_schema(), [("p1", "bolt", "five")])

    def test_validation_can_be_skipped(self):
        table = Table(parts_schema(), [("p1", "bolt", "five")], validate=False)
        assert len(table) == 1

    def test_from_dicts_fills_missing_with_none(self):
        table = Table.from_dicts(parts_schema(), [{"part_id": "p1", "name": "bolt"}])
        assert table.rows == [("p1", "bolt", None)]

    def test_to_dicts_round_trip(self):
        table = parts_table()
        rebuilt = Table.from_dicts(table.schema, table.to_dicts())
        assert rebuilt == table


class TestTableOperations:
    def test_column(self):
        assert parts_table().column("name") == ["bolt", "nut", "washer"]

    def test_project(self):
        projected = parts_table().project(["qty", "part_id"])
        assert projected.schema.field_names == ("qty", "part_id")
        assert projected.rows[0] == (5, "p1")

    def test_where(self):
        heavy = parts_table().where(lambda r: (r["qty"] or 0) >= 10)
        assert heavy.column("part_id") == ["p2"]

    def test_union_all(self):
        doubled = parts_table().union_all(parts_table())
        assert len(doubled) == 6

    def test_union_all_incompatible_rejected(self):
        with pytest.raises(SchemaError):
            parts_table().union_all(parts_table().project(["part_id"]))

    def test_sorted_by_places_none_first(self):
        ordered = parts_table().sorted_by("qty")
        assert ordered.column("part_id") == ["p3", "p1", "p2"]

    def test_sorted_descending(self):
        ordered = parts_table().sorted_by("qty", descending=True)
        assert ordered.column("part_id") == ["p2", "p1", "p3"]

    def test_limit(self):
        assert len(parts_table().limit(2)) == 2
        assert len(parts_table().limit(0)) == 0

    def test_limit_negative_rejected(self):
        with pytest.raises(ValueError):
            parts_table().limit(-1)

    def test_extended_renames_without_copying_rows(self):
        renamed = parts_table().extended("catalog")
        assert renamed.schema.name == "catalog"
        assert renamed == parts_table().extended("catalog")

    def test_equality_ignores_schema_name(self):
        a = parts_table()
        b = parts_table().extended("other_name")
        assert a == b

    @given(st.lists(st.tuples(st.text(min_size=1), st.text(), st.integers())))
    def test_project_then_project_is_stable(self, rows):
        table = Table(parts_schema(), rows, validate=False)
        once = table.project(["part_id", "qty"])
        twice = once.project(["part_id", "qty"])
        assert once == twice
        assert len(once) == len(table)

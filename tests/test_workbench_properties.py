"""Property-based tests of workbench and taxonomy invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DataType, Field, Schema, Table
from repro.workbench import (
    PricingRule,
    Recipient,
    SynonymTable,
    Syndicator,
    Taxonomy,
)

identifier = st.text(alphabet="abcdefgh", min_size=1, max_size=6)


class TestSynonymTableProperties:
    @given(st.lists(st.lists(identifier, min_size=1, max_size=4), max_size=6))
    def test_expansion_is_an_equivalence_class(self, groups):
        table = SynonymTable()
        for group in groups:
            table.add_group(group)
        for group in groups:
            for term in group:
                expansion = table.expand(term)
                # Reflexive, and every member expands to the same set.
                assert term in expansion
                for other in expansion:
                    assert table.expand(other) == expansion

    @given(st.lists(st.lists(identifier, min_size=1, max_size=4), max_size=6))
    def test_canonical_is_idempotent_and_in_group(self, groups):
        table = SynonymTable()
        for group in groups:
            table.add_group(group)
        for group in groups:
            for term in group:
                canonical = table.canonical(term)
                assert table.canonical(canonical) == canonical
                assert table.are_synonyms(term, canonical)


@st.composite
def taxonomies(draw):
    taxonomy = Taxonomy("t")
    count = draw(st.integers(min_value=1, max_value=12))
    codes = []
    for i in range(count):
        parent = draw(st.sampled_from(codes)) if codes and draw(st.booleans()) else None
        code = f"c{i}"
        taxonomy.add_category(code, f"label {i}", parent)
        codes.append(code)
    return taxonomy


class TestTaxonomyProperties:
    @settings(max_examples=50)
    @given(taxonomies())
    def test_descendants_are_acyclic_and_consistent(self, taxonomy):
        for node in taxonomy.all_nodes():
            descendants = list(node.descendants())
            assert node not in descendants
            for descendant in descendants:
                assert node in list(descendant.ancestors())

    @settings(max_examples=50)
    @given(taxonomies(), st.lists(st.tuples(st.integers(0, 11), identifier), max_size=20))
    def test_items_under_is_superset_of_assigned(self, taxonomy, assignments):
        codes = [n.code for n in taxonomy.all_nodes()]
        for index, item in assignments:
            taxonomy.assign(codes[index % len(codes)], item)
        for code in codes:
            under = taxonomy.items_under(code)
            assert taxonomy.assigned_to(code) <= under
            node = taxonomy.node(code)
            for child in node.children:
                assert taxonomy.items_under(child.code) <= under

    @settings(max_examples=30)
    @given(taxonomies())
    def test_path_starts_at_a_root(self, taxonomy):
        roots = {r.label for r in taxonomy.roots}
        for node in taxonomy.all_nodes():
            assert node.path[0] in roots
            assert node.path[-1] == node.label


def catalog_table(prices):
    schema = Schema(
        "catalog",
        (Field("sku", DataType.STRING), Field("price", DataType.FLOAT),
         Field("qty", DataType.INTEGER)),
    )
    rows = [(f"A-{i}", p, 1) for i, p in enumerate(prices)]
    return Table(schema, rows, validate=False)


class TestSyndicationProperties:
    @settings(max_examples=50)
    @given(
        st.lists(st.floats(min_value=0.01, max_value=1e5), min_size=1, max_size=20),
        st.floats(min_value=0.0, max_value=90.0),
    )
    def test_discounts_never_raise_prices(self, prices, percent):
        syndicator = Syndicator(
            pricing_rules=[PricingRule.tier_discount("preferred", percent)]
        )
        base = syndicator.syndicate(catalog_table(prices), Recipient("a"))
        discounted = syndicator.syndicate(
            catalog_table(prices), Recipient("b", tier="preferred")
        )
        for low, high in zip(discounted.table.column("price"),
                             base.table.column("price")):
            assert low <= high + 1e-9

    @settings(max_examples=30)
    @given(st.lists(st.floats(min_value=0.01, max_value=1e5), min_size=1, max_size=20))
    def test_syndication_never_changes_row_count(self, prices):
        syndicator = Syndicator()
        for fmt in ("rows", "csv", "xml"):
            result = syndicator.syndicate(
                catalog_table(prices), Recipient("r", output_format=fmt)
            )
            assert len(result.table) == len(prices)

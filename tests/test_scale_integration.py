"""A larger end-to-end run: 30 suppliers, full stack, deterministic.

This is the closest thing to a deployment smoke test: scrape thirty
heterogeneous sites, normalize, publish across eight machines with
replication, then serve a mixed workload (SQL, search, XPath, XQuery,
syndication, EXPLAIN, DB-API) with one machine failing mid-run.  It keeps
to a few seconds of wall clock so it stays in the default suite.
"""

import random

from repro.connect.sitegen import build_supplier_site
from repro.core.system import ContentIntegrationSystem
from repro.federation.dbapi import connect
from repro.ir.search import SearchMode
from repro.workbench.syndication import PricingRule, Recipient
from repro.workloads import QueryMix, generate_mro

SUPPLIERS = 30
PRODUCTS = 12


def build_world():
    system = ContentIntegrationSystem(seed=404)
    workload = generate_mro(
        seed=404, supplier_count=SUPPLIERS, products_per_supplier=PRODUCTS,
        with_taxonomies=False,
    )
    sites = system.add_compute_sites(8)
    unified = None
    for spec in workload.suppliers:
        system.register_supplier(
            build_supplier_site(
                f"{spec.name}.example", spec.products,
                layout=spec.layout, price_style=spec.price_style,
            )
        )
        raw = system.scrape_supplier(f"{spec.name}.example", spec.name)
        normalized = system.normalize(raw, spec.name, spec.currency)
        unified = normalized if unified is None else unified.union_all(normalized)
    placement = [[sites[i], sites[(i + 1) % 8]] for i in range(4)]
    system.publish_catalog(unified, 4, placement)
    system.set_vocabulary(workload.synonyms, workload.master_taxonomy)
    return system, workload


class TestScale:
    def test_full_stack_under_mixed_workload(self):
        system, workload = build_world()
        total = SUPPLIERS * PRODUCTS

        # SQL correctness at scale.
        count = system.query("select count(*) as n from catalog").table
        assert count.to_dicts() == [{"n": total}]

        per_supplier = system.query(
            "select supplier, count(*) as n from catalog group by supplier"
        ).table
        assert len(per_supplier) == SUPPLIERS
        assert all(n == PRODUCTS for n in per_supplier.column("n"))

        # A machine dies; everything keeps answering.
        system.catalog.site("site-003").up = False
        mix = QueryMix(table="catalog", sku_prefix="SUPPLIER-000-", sku_count=PRODUCTS)
        rng = random.Random(1)
        for sql in mix.batch(rng, 25):
            system.query(sql)  # must not raise

        # IR search still serves with the site down.
        hits = system.search("blck nk", mode=SearchMode.FUZZY, limit=10)
        assert hits

        # XML surfaces agree with SQL.
        sql_skus = sorted(
            system.query(
                "select sku from catalog where supplier = 'supplier-007'"
            ).table.column("sku")
        )
        xpath_skus = sorted(
            system.xpath_query("catalog", "//row[supplier='supplier-007']/sku/text()")
        )
        assert sql_skus == xpath_skus
        xquery_skus = sorted(
            e.text
            for e in system.engine.xquery(
                "catalog",
                "for $p in //row where $p/supplier = 'supplier-007' "
                "return <s>{$p/sku/text()}</s>",
            )
        )
        assert sql_skus == xquery_skus

        # Syndication to a tiered buyer.
        system.syndicator.pricing_rules.append(
            PricingRule.tier_discount("preferred", 15.0)
        )
        result = system.syndicate(Recipient("big", tier="preferred"))
        assert len(result.table) == total

        # EXPLAIN and DB-API round out the surfaces.
        assert "scan catalog" in system.engine.explain(
            "select sku from catalog where price > 100"
        )
        cursor = connect(system.engine).cursor()
        cursor.execute("select count(*) from catalog where price > ?", (100,))
        assert cursor.fetchone()[0] > 0

    def test_deterministic_across_builds(self):
        first, _ = build_world()
        second, _ = build_world()
        a = first.query("select supplier, sum(price) as s from catalog "
                        "group by supplier order by supplier").table.rows
        b = second.query("select supplier, sum(price) as s from catalog "
                         "group by supplier order by supplier").table.rows
        assert a == b

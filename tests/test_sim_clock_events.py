"""Unit tests for the simulation clock, RNG registry and event loop."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import EventLoop, RngRegistry, SimClock, derive_seed
from repro.sim.clock import ClockError


class TestSimClock:
    def test_starts_at_zero_by_default(self):
        assert SimClock().now() == 0.0

    def test_starts_at_given_time(self):
        assert SimClock(start=10.0).now() == 10.0

    def test_negative_start_rejected(self):
        with pytest.raises(ClockError):
            SimClock(start=-1.0)

    def test_advance_moves_time_forward(self):
        clock = SimClock()
        assert clock.advance(2.5) == 2.5
        assert clock.advance(0.5) == 3.0

    def test_zero_advance_is_noop(self):
        clock = SimClock(start=5.0)
        clock.advance(0.0)
        assert clock.now() == 5.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ClockError):
            SimClock().advance(-0.1)

    def test_advance_to_absolute_time(self):
        clock = SimClock()
        clock.advance_to(7.0)
        assert clock.now() == 7.0

    def test_advance_to_past_rejected(self):
        clock = SimClock(start=10.0)
        with pytest.raises(ClockError):
            clock.advance_to(9.0)

    def test_advance_to_now_is_noop(self):
        clock = SimClock(start=4.0)
        clock.advance_to(4.0)
        assert clock.now() == 4.0

    def test_elapsed_since(self):
        clock = SimClock()
        start = clock.now()
        clock.advance(12.0)
        assert clock.elapsed_since(start) == 12.0

    @given(st.lists(st.floats(min_value=0, max_value=1e6), max_size=50))
    def test_clock_is_monotone_under_any_advances(self, steps):
        clock = SimClock()
        previous = clock.now()
        for step in steps:
            clock.advance(step)
            assert clock.now() >= previous
            previous = clock.now()


class TestRngRegistry:
    def test_same_name_returns_same_stream(self):
        rng = RngRegistry(seed=1)
        assert rng.stream("a") is rng.stream("a")

    def test_streams_are_independent_of_creation_order(self):
        first = RngRegistry(seed=7)
        draws_a_then_b = (first.stream("a").random(), first.stream("b").random())
        second = RngRegistry(seed=7)
        draws_b_then_a = (second.stream("b").random(), second.stream("a").random())
        assert draws_a_then_b[0] == draws_b_then_a[1]
        assert draws_a_then_b[1] == draws_b_then_a[0]

    def test_different_seeds_differ(self):
        assert RngRegistry(seed=1).stream("x").random() != RngRegistry(
            seed=2
        ).stream("x").random()

    def test_derive_seed_is_stable(self):
        assert derive_seed(42, "hotels") == derive_seed(42, "hotels")
        assert derive_seed(42, "hotels") != derive_seed(42, "suppliers")

    def test_fork_gives_namespaced_registry(self):
        root = RngRegistry(seed=3)
        child = root.fork("federation")
        assert child.seed == derive_seed(3, "federation")
        assert isinstance(child.stream("sites"), random.Random)

    @given(st.integers(), st.text(min_size=1, max_size=30))
    def test_derive_seed_fits_64_bits(self, seed, name):
        value = derive_seed(seed, name)
        assert 0 <= value < 2**64


class TestEventLoop:
    def test_events_fire_in_time_order(self):
        clock = SimClock()
        loop = EventLoop(clock)
        fired = []
        loop.schedule_at(5.0, lambda: fired.append("late"))
        loop.schedule_at(1.0, lambda: fired.append("early"))
        loop.run_until(10.0)
        assert fired == ["early", "late"]

    def test_clock_advances_to_event_times(self):
        clock = SimClock()
        loop = EventLoop(clock)
        seen = []
        loop.schedule_at(3.0, lambda: seen.append(clock.now()))
        loop.run_until(4.0)
        assert seen == [3.0]
        assert clock.now() == 4.0

    def test_ties_break_by_insertion_order(self):
        loop = EventLoop(SimClock())
        fired = []
        loop.schedule_at(2.0, lambda: fired.append("first"))
        loop.schedule_at(2.0, lambda: fired.append("second"))
        loop.run_until(2.0)
        assert fired == ["first", "second"]

    def test_many_way_ties_preserve_full_fifo_order(self):
        # The workload scheduler depends on this: equal-timestamp events
        # must fire in exact schedule order, not heap-internal order.
        loop = EventLoop(SimClock())
        fired = []
        for index in range(50):
            loop.schedule_at(3.0, lambda i=index: fired.append(i))
        loop.run_until(3.0)
        assert fired == list(range(50))

    def test_interleaved_times_keep_fifo_within_each_instant(self):
        loop = EventLoop(SimClock())
        fired = []
        for label, time in [("a", 2.0), ("b", 1.0), ("c", 2.0), ("d", 1.0)]:
            loop.schedule_at(time, lambda tag=label: fired.append(tag))
        loop.run_until(2.0)
        assert fired == ["b", "d", "a", "c"]

    def test_same_instant_event_from_callback_fires_after_queued_ones(self):
        # An event scheduled *during* a callback for the current instant
        # still runs after everything already queued at that instant.
        clock = SimClock()
        loop = EventLoop(clock)
        fired = []

        def spawn_sibling():
            fired.append("spawner")
            loop.schedule_at(clock.now(), lambda: fired.append("spawned"))

        loop.schedule_at(1.0, spawn_sibling)
        loop.schedule_at(1.0, lambda: fired.append("queued"))
        loop.run_until(1.0)
        assert fired == ["spawner", "queued", "spawned"]

    @given(st.lists(st.floats(min_value=0.0, max_value=5.0), max_size=40))
    def test_fifo_tie_break_holds_under_any_schedule(self, times):
        loop = EventLoop(SimClock())
        fired = []
        for index, time in enumerate(times):
            loop.schedule_at(time, lambda i=index: fired.append(i))
        loop.run_until(6.0)
        expected = [i for _, i in sorted(zip(times, range(len(times))))]
        assert fired == expected

    def test_schedule_after_is_relative(self):
        clock = SimClock(start=10.0)
        loop = EventLoop(clock)
        seen = []
        loop.schedule_after(5.0, lambda: seen.append(clock.now()))
        loop.run_until(20.0)
        assert seen == [15.0]

    def test_schedule_in_past_rejected(self):
        clock = SimClock(start=10.0)
        loop = EventLoop(clock)
        with pytest.raises(ValueError):
            loop.schedule_at(5.0, lambda: None)

    def test_negative_delay_rejected(self):
        loop = EventLoop(SimClock())
        with pytest.raises(ValueError):
            loop.schedule_after(-1.0, lambda: None)

    def test_cancelled_events_do_not_fire(self):
        loop = EventLoop(SimClock())
        fired = []
        event = loop.schedule_at(1.0, lambda: fired.append("x"))
        event.cancel()
        loop.run_until(2.0)
        assert fired == []

    def test_recurring_event_fires_each_interval(self):
        clock = SimClock()
        loop = EventLoop(clock)
        times = []
        loop.schedule_every(10.0, lambda: times.append(clock.now()))
        loop.run_until(35.0)
        assert times == [10.0, 20.0, 30.0]

    def test_recurring_event_zero_interval_rejected(self):
        loop = EventLoop(SimClock())
        with pytest.raises(ValueError):
            loop.schedule_every(0.0, lambda: None)

    def test_callbacks_may_schedule_more_events(self):
        clock = SimClock()
        loop = EventLoop(clock)
        fired = []

        def chain():
            fired.append(clock.now())
            if len(fired) < 3:
                loop.schedule_after(1.0, chain)

        loop.schedule_at(1.0, chain)
        loop.run_until(10.0)
        assert fired == [1.0, 2.0, 3.0]

    def test_run_next_fires_exactly_one(self):
        loop = EventLoop(SimClock())
        fired = []
        loop.schedule_at(1.0, lambda: fired.append(1))
        loop.schedule_at(2.0, lambda: fired.append(2))
        loop.run_next()
        assert fired == [1]

    def test_run_next_on_empty_returns_none(self):
        assert EventLoop(SimClock()).run_next() is None

    def test_pending_counts_live_events(self):
        loop = EventLoop(SimClock())
        keep = loop.schedule_at(1.0, lambda: None)
        dropped = loop.schedule_at(2.0, lambda: None)
        dropped.cancel()
        assert loop.pending() == 1
        assert keep.time == 1.0

    def test_run_until_advances_clock_even_without_events(self):
        clock = SimClock()
        loop = EventLoop(clock)
        loop.run_until(50.0)
        assert clock.now() == 50.0

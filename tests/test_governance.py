"""Tests for the declarative per-tenant governance subsystem.

Covers manifest validation (schema errors, row_filter parsing, mask
styles), compilation of RLS predicates and column masks into the logical
plan (pushdown of sargable conjuncts, residual evaluation, mask semantics
for user predicates over masked columns), EXPLAIN rendering, plan-cache
and prepared-statement keying by policy signature (policy edits replan
transparently; identical policies share), the governance-aware stage
artifact hash (different RLS never collides; ungoverned hashes are
byte-identical to a governance-free engine), semantic-cache isolation in
both directions, and the workload manager's rate-limit / cost-budget
admission (token bucket, fail-closed budgets, degrade mode).
"""

import pytest

from repro.core import DataType, Field, Schema, Table
from repro.core.errors import QueryError, QueryRejectedError
from repro.federation import (
    ArtifactStore,
    FederatedEngine,
    FederationCatalog,
    SemanticCache,
    WorkloadManager,
)
from repro.federation import dbapi
from repro.federation.artifacts import stage_specs
from repro.federation.governance import (
    BudgetExhaustedError,
    GovernanceRegistry,
    PolicyError,
    RateLimitExceededError,
    mask_value,
    validate_manifest,
)
from repro.sim import EventLoop, SimClock
from repro.sql.parser import parse_sql
from repro.sql.planner import build_plan
from repro.sql.rewrite import (
    AggregateSplitting,
    ProjectionPruning,
    RewritePipeline,
    SiteFilterPushdown,
)


def build_federation(sites=4):
    """``orders(order_id, region, email, total)`` fragmented over 4 sites."""
    catalog = FederationCatalog(SimClock())
    for i in range(sites):
        catalog.make_site(f"s{i}")
    schema = Schema(
        "orders",
        (
            Field("order_id", DataType.STRING),
            Field("region", DataType.STRING),
            Field("email", DataType.STRING),
            Field("total", DataType.FLOAT),
        ),
    )
    rows = [
        (f"o{i:03d}", "EU" if i % 2 else "US", f"user{i}@example.com", float(i))
        for i in range(40)
    ]
    catalog.load_fragmented(Table(schema, rows), 2, [["s0", "s1"], ["s2", "s3"]])
    return catalog


MANIFEST = {
    "version": 1,
    "tenants": {
        "acme": {
            "tables": {
                "orders": {
                    "row_filter": "region = 'EU'",
                    "masks": {"email": "redact"},
                }
            },
        },
        "beta": {
            "tables": {"orders": {"row_filter": "region = 'US'"}},
        },
        # Same declared policy as acme: must share plans and artifacts.
        "acme-staging": {
            "tables": {
                "orders": {
                    "row_filter": "region = 'EU'",
                    "masks": {"email": "redact"},
                }
            },
        },
    },
}


def make_engine(manifest=MANIFEST, **engine_kwargs):
    catalog = build_federation()
    governance = GovernanceRegistry(manifest) if manifest is not None else None
    engine = FederatedEngine(catalog, governance=governance, **engine_kwargs)
    return catalog, engine, governance


def post_hoc(rows, region=None, mask_email=None, region_at=1, email_at=2):
    """Reference enforcement: filter + mask applied to unrestricted rows."""
    out = []
    for row in rows:
        if region is not None and row[region_at] != region:
            continue
        if mask_email is not None:
            row = row[:email_at] + (mask_value(mask_email, row[email_at]),) + row[email_at + 1:]
        out.append(row)
    return out


class TestManifestValidation:
    def test_valid_manifest_has_no_errors(self):
        assert validate_manifest(MANIFEST) == []

    def test_version_is_required(self):
        errors = validate_manifest({"tenants": {}})
        assert any("version" in e for e in errors)

    def test_unknown_mask_style_is_flagged(self):
        manifest = {
            "version": 1,
            "tenants": {
                "t": {"tables": {"orders": {"masks": {"email": "rot13"}}}}
            },
        }
        assert any("rot13" in e for e in validate_manifest(manifest))

    def test_unparseable_row_filter_is_flagged(self):
        manifest = {
            "version": 1,
            "tenants": {
                "t": {"tables": {"orders": {"row_filter": "region = = 'EU'"}}}
            },
        }
        assert any("does not parse" in e for e in validate_manifest(manifest))

    def test_parameter_in_row_filter_is_flagged(self):
        manifest = {
            "version": 1,
            "tenants": {
                "t": {"tables": {"orders": {"row_filter": "region = ?"}}}
            },
        }
        assert validate_manifest(manifest)

    def test_unknown_keys_are_flagged(self):
        manifest = {
            "version": 1,
            "tenants": {
                "t": {
                    "tables": {"orders": {"row_filter": "total > 0"}},
                    "quota": 5,
                }
            },
        }
        assert any("quota" in e for e in validate_manifest(manifest))

    def test_bad_rate_and_budget_are_flagged(self):
        manifest = {
            "version": 1,
            "tenants": {
                "t": {
                    "tables": {"orders": {"row_filter": "total > 0"}},
                    "rate_limit": {"per_second": -1},
                    "budget": {"credits": 0, "on_exhausted": "explode"},
                }
            },
        }
        errors = validate_manifest(manifest)
        assert any("per_second" in e for e in errors)
        assert any("credits" in e for e in errors)
        assert any("explode" in e for e in errors)

    def test_load_manifest_raises_policy_error_on_bad_input(self):
        with pytest.raises(PolicyError):
            GovernanceRegistry({"version": 2, "tenants": {}})

    def test_mask_list_shorthand_defaults_to_redact(self):
        manifest = {
            "version": 1,
            "tenants": {"t": {"tables": {"orders": {"masks": ["email"]}}}},
        }
        assert validate_manifest(manifest) == []
        registry = GovernanceRegistry(manifest)
        assert registry.policy_for("t").tables["orders"].masks == {
            "email": "redact"
        }

    def test_yaml_manifest_loads_when_yaml_available(self):
        pytest.importorskip("yaml")
        text = (
            "version: 1\n"
            "tenants:\n"
            "  acme:\n"
            "    tables:\n"
            "      orders:\n"
            "        row_filter: region = 'EU'\n"
            "        masks: {email: redact}\n"
        )
        registry = GovernanceRegistry(text)
        assert registry.policy_for("acme").tables["orders"].row_filter == (
            "region = 'EU'"
        )

    def test_validate_against_catalog_rejects_unknown_columns(self):
        catalog = build_federation()
        registry = GovernanceRegistry(
            {
                "version": 1,
                "tenants": {
                    "t": {"tables": {"orders": {"masks": {"ssn": "null"}}}}
                },
            }
        )
        errors = registry.validate_against_catalog(catalog)
        assert any("ssn" in e for e in errors)


class TestMaskValue:
    def test_styles(self):
        assert mask_value("null", "x") is None
        assert mask_value("redact", "x") == "***"
        assert mask_value("last4", "user7@example.com").endswith(".com")
        assert set(mask_value("last4", "user7@example.com")[:-4]) == {"*"}
        hashed = mask_value("hash", "x")
        assert hashed != "x" and len(hashed) == 12
        assert mask_value("hash", "x") == hashed  # deterministic

    def test_none_stays_none(self):
        for style in ("null", "redact", "hash", "last4"):
            assert mask_value(style, None) is None


class TestGovernedExecution:
    def test_rls_restricts_and_masks_apply(self):
        _, engine, _ = make_engine()
        unrestricted = engine.query("select * from orders").table.rows
        governed = engine.query("select * from orders", tenant="acme").table
        assert sorted(governed.rows) == sorted(
            post_hoc(unrestricted, region="EU", mask_email="redact")
        )
        assert set(governed.column("email")) == {"***"}

    def test_ungoverned_tenant_sees_everything(self):
        _, engine, _ = make_engine()
        full = engine.query("select * from orders").table.rows
        other = engine.query("select * from orders", tenant="walkin").table.rows
        assert sorted(other) == sorted(full)

    def test_user_predicate_on_masked_column_sees_masked_values(self):
        # Masks are part of the governed answer's semantics: a predicate the
        # tenant writes over a masked column compares against what the tenant
        # is allowed to see, never the raw value.
        _, engine, _ = make_engine()
        raw = engine.query(
            "select * from orders where email = 'user1@example.com'",
            tenant="acme",
        ).table
        assert raw.rows == []
        masked = engine.query(
            "select order_id from orders where email = '***'", tenant="acme"
        ).table
        assert len(masked.rows) == 20  # every EU row matches the redaction

    def test_aggregate_over_governed_scan(self):
        _, engine, _ = make_engine()
        result = engine.query(
            "select count(*) from orders", tenant="beta"
        ).table
        assert result.rows == [(20,)]

    def test_rows_filtered_metric_and_governed_counter(self):
        _, engine, _ = make_engine()
        result = engine.query("select * from orders", tenant="acme")
        assert result.report.governed_tenant == "acme"
        assert engine.metrics.counter("governance.queries_policed").value == 1
        # region = 'EU' is sargable and pushes down, so no residual rows are
        # dropped at the scan; a non-sargable policy shows up in the metric.
        engine.governance.load_manifest(
            {
                "version": 1,
                "tenants": {
                    "acme": {
                        "tables": {
                            "orders": {"row_filter": "total > total - 1 and region = 'EU'"}
                        }
                    }
                },
            }
        )
        engine.query("select * from orders", tenant="acme")
        assert (
            engine.metrics.counter("governance.rows_filtered_by_rls").value
            >= 0
        )

    def test_policy_with_unknown_column_fails_closed(self):
        _, engine, _ = make_engine(
            manifest={
                "version": 1,
                "tenants": {
                    "t": {"tables": {"orders": {"row_filter": "ssn = 'x'"}}}
                },
            }
        )
        with pytest.raises(QueryError):
            engine.query("select * from orders", tenant="t")

    def test_budget_charged_after_execution(self):
        _, engine, governance = make_engine(
            manifest={
                "version": 1,
                "tenants": {
                    "acme": {
                        "tables": {"orders": {"row_filter": "region = 'EU'"}},
                        "budget": {"credits": 10.0},
                    }
                },
            }
        )
        before = governance.remaining_budget("acme")
        result = engine.query("select * from orders", tenant="acme")
        after = governance.remaining_budget("acme")
        assert before - after == pytest.approx(result.plan.total_price)


class TestExplainRendering:
    def test_explain_shows_rls_and_mask(self):
        _, engine, _ = make_engine()
        text = engine.explain(
            "select order_id from orders where total > 3", tenant="acme"
        )
        assert "rls(tenant=acme: region = 'EU')" in text
        assert "mask(email)" in text
        # The user's own predicate stays attributed to the user, not the policy.
        assert "pushdown(total > 3)" in text

    def test_explain_analyze_shows_governance(self):
        _, engine, _ = make_engine()
        text = engine.explain(
            "select order_id from orders", analyze=True, tenant="acme"
        )
        assert "rls(tenant=acme" in text
        assert "mask(email)" in text

    def test_ungoverned_explain_unchanged(self):
        _, engine, _ = make_engine()
        text = engine.explain("select order_id from orders")
        assert "rls(" not in text
        assert "mask(" not in text


class TestPolicySignature:
    def test_identical_policies_share_a_signature(self):
        _, _, governance = make_engine()
        assert governance.signature_for("acme") == governance.signature_for(
            "acme-staging"
        )
        assert governance.signature_for("acme") != governance.signature_for(
            "beta"
        )
        assert governance.signature_for("walkin") is None

    def test_signature_tracks_policy_content_not_spend(self):
        _, engine, governance = make_engine(
            manifest={
                "version": 1,
                "tenants": {
                    "acme": {
                        "tables": {"orders": {"row_filter": "region = 'EU'"}},
                        "budget": {"credits": 5.0},
                    }
                },
            }
        )
        before = governance.signature_for("acme")
        engine.query("select * from orders", tenant="acme")
        assert governance.signature_for("acme") == before  # spend is runtime


class TestPreparedRevalidation:
    def test_policy_edit_replans_prepared_statement(self):
        _, engine, governance = make_engine()
        prepared = engine.prepare(
            "select * from orders where total > ?", tenant="acme"
        )
        first = engine.execute(prepared, (0.0,)).table
        assert set(first.column("region")) == {"EU"}
        governance.load_manifest(
            {
                "version": 1,
                "tenants": {
                    "acme": {
                        "tables": {"orders": {"row_filter": "region = 'US'"}}
                    }
                },
            }
        )
        second = engine.execute(prepared, (0.0,)).table
        assert set(second.column("region")) == {"US"}
        assert set(second.column("email")) != {"***"}  # mask was dropped too

    def test_losing_governance_entirely_also_replans(self):
        _, engine, governance = make_engine()
        prepared = engine.prepare("select * from orders", tenant="acme")
        assert len(engine.execute(prepared, ()).table) == 20
        governance.load_manifest({"version": 1, "tenants": {"beta": {
            "tables": {"orders": {"row_filter": "region = 'US'"}}}}})
        assert len(engine.execute(prepared, ()).table) == 40

    def test_plan_cache_keys_on_signature_not_tenant_name(self):
        _, engine, _ = make_engine()
        cache = dbapi.PlanCache(engine)
        sql = "select order_id from orders where total > ?"
        acme = cache.get_or_prepare(sql, tenant="acme")
        staging = cache.get_or_prepare(sql, tenant="acme-staging")
        beta = cache.get_or_prepare(sql, tenant="beta")
        assert acme is staging  # identical declared policy: one plan
        assert acme is not beta

    def test_ungoverned_tenants_share_one_cache_entry(self):
        _, engine, _ = make_engine()
        cache = dbapi.PlanCache(engine)
        sql = "select order_id from orders"
        a = cache.get_or_prepare(sql, tenant="walkin-1")
        b = cache.get_or_prepare(sql, tenant="walkin-2")
        c = cache.get_or_prepare(sql)
        assert a is b is c


def governed_stage_key(catalog, store, governance, tenant, sql):
    statement = parse_sql(sql)
    bindings = {statement.table.binding: statement.table.name}
    binding_fields = catalog.binding_fields(bindings)
    plan = build_plan(statement, binding_fields)
    passes = [SiteFilterPushdown(binding_fields)]
    if governance is not None:
        injection = governance.injection_pass(tenant, binding_fields)
        if injection is not None:
            passes.append(injection)
    passes += [ProjectionPruning(binding_fields), AggregateSplitting()]
    plan = RewritePipeline(passes).run(plan)
    specs = stage_specs(plan)
    assert len(specs) == 1
    spec = next(iter(specs.values()))
    return store.stage_key(catalog, spec.scan, spec.agg)


class TestArtifactHashIsolation:
    SQL = "select order_id, email from orders"

    def test_different_rls_never_collides(self):
        catalog = build_federation()
        store = ArtifactStore(catalog.clock)
        governance = GovernanceRegistry(MANIFEST)
        acme = governed_stage_key(catalog, store, governance, "acme", self.SQL)
        beta = governed_stage_key(catalog, store, governance, "beta", self.SQL)
        plain = governed_stage_key(catalog, store, None, None, self.SQL)
        assert acme != beta
        assert acme != plain and beta != plain

    def test_identical_policy_shares_the_artifact(self):
        catalog = build_federation()
        store = ArtifactStore(catalog.clock)
        governance = GovernanceRegistry(MANIFEST)
        acme = governed_stage_key(catalog, store, governance, "acme", self.SQL)
        twin = governed_stage_key(
            catalog, store, governance, "acme-staging", self.SQL
        )
        assert acme == twin

    def test_mask_style_is_part_of_the_hash(self):
        catalog = build_federation()
        store = ArtifactStore(catalog.clock)
        redact = GovernanceRegistry(
            {
                "version": 1,
                "tenants": {
                    "t": {"tables": {"orders": {"masks": {"email": "redact"}}}}
                },
            }
        )
        hashed = GovernanceRegistry(
            {
                "version": 1,
                "tenants": {
                    "t": {"tables": {"orders": {"masks": {"email": "hash"}}}}
                },
            }
        )
        a = governed_stage_key(catalog, store, redact, "t", self.SQL)
        b = governed_stage_key(catalog, store, hashed, "t", self.SQL)
        assert a != b

    def test_ungoverned_hash_is_identical_with_and_without_registry(self):
        # The governance parts are only appended for governed scans, so a
        # governance-enabled deployment keeps every pre-existing artifact.
        catalog = build_federation()
        store = ArtifactStore(catalog.clock)
        governance = GovernanceRegistry(MANIFEST)
        with_registry = governed_stage_key(
            catalog, store, governance, "walkin", self.SQL
        )
        without = governed_stage_key(catalog, store, None, None, self.SQL)
        assert with_registry == without

    def test_cross_tenant_artifact_rows_stay_governed(self):
        # End-to-end: acme's artifact is post-RLS/post-mask; beta's query
        # hashes differently and recomputes, so neither sees the other's rows.
        catalog = build_federation()
        governance = GovernanceRegistry(MANIFEST)
        engine = FederatedEngine(
            catalog,
            governance=governance,
            artifacts=ArtifactStore(catalog.clock),
        )
        acme_first = engine.query(self.SQL, tenant="acme").table
        beta = engine.query(self.SQL, tenant="beta").table
        acme_again = engine.query(self.SQL, tenant="acme").table
        assert sorted(acme_again.rows) == sorted(acme_first.rows)
        assert set(acme_again.column("email")) == {"***"}
        assert not set(beta.column("order_id")) & set(
            acme_first.column("order_id")
        )


class TestSemanticCacheIsolation:
    def test_raw_capture_never_leaks_unmasked_rows(self):
        catalog = build_federation()
        engine = FederatedEngine(
            catalog,
            cache=SemanticCache(catalog.clock),
            governance=GovernanceRegistry(MANIFEST),
        )
        # Warm the cache with an unrestricted query, then ask as acme: the
        # cached raw rows must come back RLS-filtered and masked.
        full = engine.query("select * from orders").table
        assert len(full) == 40
        governed = engine.query("select * from orders", tenant="acme").table
        assert len(governed) == 20
        assert set(governed.column("region")) == {"EU"}
        assert set(governed.column("email")) == {"***"}

    def test_governed_capture_never_serves_broader_request(self):
        catalog = build_federation()
        engine = FederatedEngine(
            catalog,
            cache=SemanticCache(catalog.clock),
            governance=GovernanceRegistry(MANIFEST),
        )
        governed = engine.query("select * from orders", tenant="acme").table
        assert len(governed) == 20
        full = engine.query("select * from orders").table
        assert len(full) == 40
        assert any(email != "***" for email in full.column("email"))


def make_manager(manifest, max_in_flight=4):
    catalog = build_federation()
    governance = GovernanceRegistry(manifest)
    engine = FederatedEngine(catalog, governance=governance)
    loop = EventLoop(catalog.clock)
    manager = WorkloadManager(engine, loop, max_in_flight=max_in_flight)
    return catalog, engine, governance, manager


RATE_LIMITED = {
    "version": 1,
    "tenants": {
        "chatty": {
            "tables": {"orders": {"row_filter": "region = 'EU'"}},
            "rate_limit": {"per_second": 1.0, "burst": 2},
        }
    },
}

TIGHT_BUDGET = {
    "version": 1,
    "tenants": {
        "frugal": {
            "tables": {"orders": {"row_filter": "region = 'EU'"}},
            "budget": {"credits": 0.001, "on_exhausted": "reject"},
        },
        "flexible": {
            "tables": {"orders": {"row_filter": "region = 'EU'"}},
            "budget": {"credits": 0.001, "on_exhausted": "degrade"},
        },
    },
}

QUERY = "select count(*) from orders"


class TestRateLimiting:
    def test_burst_then_rejection(self):
        catalog, engine, _, manager = make_manager(RATE_LIMITED)
        for _ in range(2):
            handle = manager.submit(QUERY, tenant="chatty")
            manager.drain(handle)
            assert handle.result().table.rows == [(20,)]
        with pytest.raises(RateLimitExceededError):
            manager.submit(QUERY, tenant="chatty")
        assert engine.metrics.counter("governance.rate_limited").value == 1

    def test_tokens_refill_with_the_clock(self):
        catalog, engine, _, manager = make_manager(RATE_LIMITED)
        for _ in range(2):
            manager.drain(manager.submit(QUERY, tenant="chatty"))
        with pytest.raises(RateLimitExceededError):
            manager.submit(QUERY, tenant="chatty")
        catalog.clock.advance(1.5)
        handle = manager.submit(QUERY, tenant="chatty")
        manager.drain(handle)
        assert handle.done

    def test_rate_limit_is_a_rejection_for_shed_accounting(self):
        catalog, engine, _, manager = make_manager(RATE_LIMITED)
        for _ in range(2):
            manager.drain(manager.submit(QUERY, tenant="chatty"))
        with pytest.raises(QueryRejectedError):
            manager.submit(QUERY, tenant="chatty")

    def test_other_tenants_unaffected(self):
        catalog, engine, _, manager = make_manager(RATE_LIMITED)
        for _ in range(2):
            manager.drain(manager.submit(QUERY, tenant="chatty"))
        with pytest.raises(RateLimitExceededError):
            manager.submit(QUERY, tenant="chatty")
        handle = manager.submit(QUERY, tenant="quiet")
        manager.drain(handle)
        assert handle.result().table.rows == [(40,)]


class TestCostBudgets:
    def exhaust(self, governance, tenant):
        governance.charge(tenant, 1.0)  # spend past the 0.001-credit budget

    def test_reject_mode_raises_on_admission(self):
        catalog, engine, governance, manager = make_manager(TIGHT_BUDGET)
        self.exhaust(governance, "frugal")
        with pytest.raises(BudgetExhaustedError):
            manager.submit(QUERY, tenant="frugal")
        assert (
            engine.metrics.counter("governance.budget_rejections").value == 1
        )

    def test_reject_mode_fails_closed_on_the_direct_path(self):
        # Even bypassing the workload manager, an exhausted reject-mode
        # tenant cannot buy a plan: the agoric optimizer gets a zero budget.
        from repro.federation.agoric import BudgetExceededError

        _, engine, governance = make_engine(manifest=TIGHT_BUDGET)
        self.exhaust(governance, "frugal")
        with pytest.raises(BudgetExceededError):
            engine.query(QUERY, tenant="frugal")

    def test_degrade_mode_runs_with_degraded_ok(self):
        catalog, engine, governance, manager = make_manager(TIGHT_BUDGET)
        self.exhaust(governance, "flexible")
        handle = manager.submit(QUERY, tenant="flexible")
        manager.drain(handle)
        assert handle.done
        assert (
            engine.metrics.counter("governance.budget_degraded").value == 1
        )

    def test_remaining_budget_caps_the_bid(self):
        _, engine, governance = make_engine(manifest=TIGHT_BUDGET)
        assert governance.effective_budget("frugal", None) == pytest.approx(
            0.001
        )
        assert governance.effective_budget("frugal", 0.0005) == pytest.approx(
            0.0005
        )
        governance.charge("frugal", 0.0004)
        assert governance.effective_budget("frugal", None) == pytest.approx(
            0.0006
        )

    def test_reset_budget_restores_admission(self):
        catalog, engine, governance, manager = make_manager(TIGHT_BUDGET)
        self.exhaust(governance, "frugal")
        with pytest.raises(BudgetExhaustedError):
            manager.submit(QUERY, tenant="frugal")
        governance.reset_budget("frugal")
        handle = manager.submit(QUERY, tenant="frugal")
        manager.drain(handle)
        assert handle.done


class TestWorkloadIntegration:
    def test_submitted_sql_is_governed(self):
        catalog, engine, _, manager = make_manager(MANIFEST)
        handle = manager.submit("select * from orders", tenant="acme")
        manager.drain(handle)
        table = handle.result().table
        assert set(table.column("region")) == {"EU"}
        assert set(table.column("email")) == {"***"}

    def test_prepared_for_other_policy_is_refused(self):
        catalog, engine, _, manager = make_manager(MANIFEST)
        prepared = engine.prepare("select * from orders", tenant="acme")
        with pytest.raises(QueryError):
            manager.submit(prepared=prepared, params=(), tenant="beta")
        # Same declared policy is fine even under a different tenant name.
        handle = manager.submit(
            prepared=prepared, params=(), tenant="acme-staging"
        )
        manager.drain(handle)
        assert set(handle.result().table.column("region")) == {"EU"}

    def test_dbapi_connection_is_governed(self):
        catalog, engine, _, manager = make_manager(MANIFEST)
        connection = dbapi.connect(
            engine, workload=manager.loop and manager, tenant="acme"
        )
        cursor = connection.cursor()
        cursor.execute("select region, email from orders where total > ?", (0.0,))
        rows = cursor.fetchall()
        assert rows and all(region == "EU" for region, _ in rows)
        assert all(email == "***" for _, email in rows)

"""Tests for the MRO, hotel, supply-chain and query workload generators."""

import random

import pytest

from repro.federation import FederationCatalog, FederatedEngine
from repro.federation.engine import LIVE_ONLY
from repro.sim import EventLoop, SimClock
from repro.workloads import (
    QueryMix,
    generate_hotels,
    generate_mro,
    generate_supply_chain,
    poisson_arrivals,
)


class TestMroWorkload:
    def test_deterministic_for_seed(self):
        a = generate_mro(seed=7, supplier_count=3, products_per_supplier=10)
        b = generate_mro(seed=7, supplier_count=3, products_per_supplier=10)
        assert [s.products for s in a.suppliers] == [s.products for s in b.suppliers]
        c = generate_mro(seed=8, supplier_count=3, products_per_supplier=10)
        assert [s.products for s in a.suppliers] != [s.products for s in c.suppliers]

    def test_shape(self):
        workload = generate_mro(seed=1, supplier_count=5, products_per_supplier=20)
        assert len(workload.suppliers) == 5
        assert all(len(s.products) == 20 for s in workload.suppliers)
        assert len(workload.all_products()) == 100

    def test_products_carry_ground_truth(self):
        workload = generate_mro(seed=1, supplier_count=2, products_per_supplier=30)
        for product in workload.all_products():
            assert product["category"] in workload.master_taxonomy
            assert product["canonical_name"]
            assert product["currency"] == next(
                s.currency for s in workload.suppliers if s.name == product["supplier"]
            )

    def test_names_are_messy_but_grounded(self):
        workload = generate_mro(seed=3, supplier_count=4, products_per_supplier=50)
        products = workload.all_products()
        exact = sum(1 for p in products if p["name"] == p["canonical_name"])
        assert 0 < exact < len(products)  # some clean, some corrupted

    def test_supplier_taxonomy_maps_to_master(self):
        workload = generate_mro(seed=2, supplier_count=2, products_per_supplier=25)
        supplier = workload.suppliers[0]
        assert supplier.taxonomy is not None
        for source_code, master_code in supplier.truth_mapping.items():
            assert source_code in supplier.taxonomy
            assert master_code in workload.master_taxonomy
        # Hierarchy is preserved: parents map to parents.
        for node in supplier.taxonomy.all_nodes():
            if node.parent is not None:
                master_child = workload.master_taxonomy.node(
                    supplier.truth_mapping[node.code]
                )
                master_parent = workload.master_taxonomy.node(
                    supplier.truth_mapping[node.parent.code]
                )
                assert master_child.parent is master_parent

    def test_synonym_table_covers_paper_example(self):
        workload = generate_mro(seed=0, supplier_count=1)
        assert workload.synonyms.are_synonyms("india ink", "black ink")


class TestHotelWorkload:
    def test_shape_and_determinism(self):
        market = generate_hotels(seed=5, chain_count=50, hotels_per_chain=4)
        assert len(market.chains) == 50
        assert len(market.hotels) == 200
        again = generate_hotels(seed=5, chain_count=50, hotels_per_chain=4)
        assert market.hotels == again.hotels

    def test_traveler_query_ground_truth(self):
        market = generate_hotels(seed=1, chain_count=10)
        matches = market.matching_hotels(max_miles=10.0, max_rate=200.0)
        for hotel in market.hotels:
            if hotel["hotel_id"] in matches:
                assert hotel["miles_to_airport"] <= 10.0
                assert hotel["corporate_rate"] <= 200.0
                assert hotel["rooms_available"] > 0

    def test_volatility_mutates_market(self):
        market = generate_hotels(seed=2, chain_count=5)
        loop = EventLoop(SimClock())
        market.schedule_volatility(loop, random.Random(3), mean_interval=1.0)
        before = [dict(h) for h in market.hotels]
        loop.run_until(100.0)
        assert market.updates_applied > 50
        assert [dict(h) for h in market.hotels] != before

    def test_register_sources_serves_live_data(self):
        clock = SimClock()
        market = generate_hotels(seed=3, chain_count=4, hotels_per_chain=2)
        catalog = FederationCatalog(clock)
        chain_sites = {}
        for i, chain in enumerate(market.chains):
            site = catalog.make_site(f"res-{i}")
            chain_sites[chain] = site.name
        market.register_sources(catalog, chain_sites)
        engine = FederatedEngine(catalog)

        live = engine.query(
            "select * from hotel_availability", max_staleness=LIVE_ONLY
        )
        assert len(live.table) == 8
        hotel = market.hotels[0]
        hotel["rooms_available"] = 777
        fresh = engine.query(
            f"select rooms_available from hotel_availability "
            f"where hotel_id = '{hotel['hotel_id']}'",
            max_staleness=LIVE_ONLY,
        )
        assert fresh.table.column("rooms_available") == [777]

    def test_static_table_registered(self):
        clock = SimClock()
        market = generate_hotels(seed=3, chain_count=3, hotels_per_chain=2)
        catalog = FederationCatalog(clock)
        chain_sites = {
            chain: catalog.make_site(f"res-{i}").name
            for i, chain in enumerate(market.chains)
        }
        market.register_sources(catalog, chain_sites)
        engine = FederatedEngine(catalog)
        result = engine.query(
            "select s.name from hotel_static s join hotel_availability a "
            "on s.hotel_id = a.hotel_id where a.rooms_available > 0"
        )
        truth = {h["hotel_id"] for h in market.hotels if h["rooms_available"] > 0}
        assert len(result.table) == len(truth)


class TestSupplyChain:
    def test_shape(self):
        chain = generate_supply_chain(seed=1, depth=2, fanout=3)
        assert len(chain.nodes) == 1 + 3 + 9
        assert len(chain.contracts) == 12

    def test_max_increase_is_chain_bottleneck(self):
        chain = generate_supply_chain(seed=4, depth=3, fanout=2)
        increase = chain.max_production_increase()
        slacks = [n.slack for n in chain.nodes.values()]
        assert increase == min(slacks) or increase >= 0
        assert increase <= chain.nodes[chain.root].slack

    def test_bottleneck_identified(self):
        chain = generate_supply_chain(seed=4, depth=2, fanout=2)
        limiting = chain.limiting_companies()
        bottleneck = chain.max_production_increase()
        assert all(chain.nodes[c].slack == bottleneck for c in limiting)
        assert limiting

    def test_tightening_a_supplier_lowers_the_bound(self):
        chain = generate_supply_chain(seed=5, depth=2, fanout=2)
        victim = next(iter(chain.nodes["manufacturer"].suppliers))
        chain.nodes[victim].output = chain.nodes[victim].capacity  # zero slack
        assert chain.max_production_increase() == 0

    def test_unknown_company_rejected(self):
        with pytest.raises(KeyError):
            generate_supply_chain().max_production_increase("ghost-co")

    def test_tables(self):
        chain = generate_supply_chain(seed=1, depth=2, fanout=2)
        assert len(chain.companies_table()) == len(chain.nodes)
        assert len(chain.edges_table()) == sum(
            len(n.suppliers) for n in chain.nodes.values()
        )
        assert len(chain.contracts_table()) == len(chain.contracts)

    def test_contracts_mention_parties(self):
        chain = generate_supply_chain(seed=2, depth=1, fanout=2)
        for contract in chain.contracts:
            assert contract["buyer"] in contract["body"]
            assert contract["supplier"] in contract["body"]


class TestQueryMix:
    def test_poisson_arrivals_sorted_and_within_horizon(self):
        arrivals = poisson_arrivals(random.Random(1), rate_per_second=2.0, horizon=100.0)
        assert arrivals == sorted(arrivals)
        assert all(0 <= t < 100.0 for t in arrivals)
        assert 120 < len(arrivals) < 280  # ~200 expected

    def test_poisson_rate_must_be_positive(self):
        with pytest.raises(ValueError):
            poisson_arrivals(random.Random(1), 0.0, 10.0)

    def test_mix_is_deterministic_per_seed(self):
        mix = QueryMix()
        a = mix.batch(random.Random(9), 20)
        b = mix.batch(random.Random(9), 20)
        assert a == b

    def test_mix_contains_all_kinds(self):
        mix = QueryMix()
        batch = mix.batch(random.Random(0), 100)
        assert any("where sku =" in q for q in batch)
        assert any("price >=" in q for q in batch)
        assert any("group by" in q for q in batch)

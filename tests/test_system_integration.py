"""Integration tests: the full scrape -> normalize -> publish -> serve loop."""

import pytest

from repro.connect.sitegen import build_supplier_site
from repro.core.system import ContentIntegrationSystem, default_wrapper
from repro.core.errors import QueryError, WrapperError
from repro.ir.search import SearchMode
from repro.workbench.syndication import PricingRule, Recipient
from repro.workloads import generate_mro


def build_system(supplier_count=3, products_per_supplier=15, seed=11):
    system = ContentIntegrationSystem(seed=seed)
    workload = generate_mro(
        seed=seed,
        supplier_count=supplier_count,
        products_per_supplier=products_per_supplier,
        with_taxonomies=False,
    )
    for spec in workload.suppliers:
        site = build_supplier_site(
            f"{spec.name}.example",
            spec.products,
            layout=spec.layout,
            price_style=spec.price_style,
        )
        system.register_supplier(site)
    return system, workload


class TestScrapeNormalizePublish:
    def test_full_loop(self):
        system, workload = build_system()
        sites = system.add_compute_sites(4)
        tables = []
        for spec in workload.suppliers:
            raw = system.scrape_supplier(f"{spec.name}.example", spec.name)
            assert len(raw) == 15
            tables.append(system.normalize(raw, spec.name, spec.currency))
        unified = tables[0]
        for table in tables[1:]:
            unified = unified.union_all(table)
        assert len(unified) == 45

        placement = [[sites[0], sites[1]], [sites[2], sites[3]]]
        system.publish_catalog(unified, 2, placement)

        count = system.query("select count(*) as n from catalog").table.to_dicts()
        assert count == [{"n": 45}]

    def test_prices_normalized_to_usd(self):
        system, workload = build_system()
        sites = system.add_compute_sites(2)
        spec = next(s for s in workload.suppliers if s.currency != "USD")
        raw = system.scrape_supplier(f"{spec.name}.example", spec.name)
        normalized = system.normalize(raw, spec.name, spec.currency)
        rate = workload.exchange_rates[spec.currency]
        original = {p["sku"]: p["price"] for p in spec.products}
        for row in normalized.to_dicts():
            assert row["currency"] == "USD"
            assert row["price"] == pytest.approx(original[row["sku"]] * rate, rel=0.01)

    def test_unregistered_supplier_rejected(self):
        system, _ = build_system()
        with pytest.raises(QueryError):
            system.scrape_supplier("ghost.example")

    def test_unknown_layout_wrapper_rejected(self):
        with pytest.raises(WrapperError):
            default_wrapper("spiral")


class TestServingSurfaces:
    def make_published(self):
        system, workload = build_system(supplier_count=4, products_per_supplier=25)
        sites = system.add_compute_sites(4)
        unified = None
        for spec in workload.suppliers:
            raw = system.scrape_supplier(f"{spec.name}.example", spec.name)
            table = system.normalize(raw, spec.name, spec.currency)
            unified = table if unified is None else unified.union_all(table)
        system.publish_catalog(
            unified, 2, [[sites[0], sites[1]], [sites[2], sites[3]]]
        )
        system.set_vocabulary(workload.synonyms, workload.master_taxonomy)
        return system, workload

    def test_sql_join_style_query(self):
        system, _ = self.make_published()
        result = system.query(
            "select supplier, count(*) as n from catalog group by supplier"
        )
        assert len(result.table) == 4
        assert sum(result.table.column("n")) == 100

    def test_search_with_synonyms(self):
        system, _ = self.make_published()
        india = {h.doc_id for h in system.search("india ink", mode=SearchMode.SYNONYM)}
        black = {h.doc_id for h in system.search("black ink", mode=SearchMode.SYNONYM)}
        assert india == black

    def test_fuzzy_search_finds_corrupted_names(self):
        system, _ = self.make_published()
        hits = system.search("drlls: crdlss", mode=SearchMode.FUZZY, limit=20)
        assert hits  # vowel-dropped query still finds drill products

    def test_xpath_surface(self):
        system, _ = self.make_published()
        skus = system.xpath_query("catalog", "//row[supplier='supplier-000']/sku/text()")
        assert len(skus) == 25

    def test_syndication_applies_rules(self):
        system, _ = self.make_published()
        system.syndicator.pricing_rules.append(
            PricingRule.tier_discount("preferred", 20.0)
        )
        plain = system.syndicate(Recipient("walk-in", tier="standard"))
        preferred = system.syndicate(Recipient("big-co", tier="preferred"))
        assert preferred.table.column("price")[0] == pytest.approx(
            plain.table.column("price")[0] * 0.8, rel=1e-4
        )

    def test_failover_in_integrated_system(self):
        system, _ = self.make_published()
        system.catalog.site("site-000").up = False
        result = system.query("select count(*) as n from catalog")
        assert result.table.to_dicts() == [{"n": 100}]


class TestRegistryOnboarding:
    def test_onboard_from_listing_one_call(self):
        from repro.connect import SupplierListing

        system, workload = build_system()
        system.add_compute_sites(2)
        spec = workload.suppliers[0]
        listing = SupplierListing(
            supplier=spec.name,
            host=f"{spec.name}.example",
            catalog_url=f"http://{spec.name}.example/catalog?page=1",
            access="scrape",
            fields=("sku", "name", "price", "qty"),
            layout_hint=spec.layout,
            currency=spec.currency,
            price_style=spec.price_style,
        )
        table = system.onboard_from_listing(listing)
        assert len(table) == 15
        assert all(c == "USD" for c in table.column("currency"))

    def test_onboarding_login_site_needs_credentials(self):
        from repro.connect import SupplierListing
        from repro.connect.sitegen import build_supplier_site
        from repro.core.errors import WrapperError

        system = ContentIntegrationSystem(seed=5)
        products = [{"sku": "P-1", "name": "widget", "price": 2.0,
                     "currency": "USD", "qty": 5}]
        site = build_supplier_site("locked.example", products, requires_login=True)
        system.register_supplier(site)
        listing = SupplierListing(
            supplier="locked", host="locked.example",
            catalog_url=site.catalog_url(), access="scrape",
            fields=("sku", "name", "price", "qty"), layout_hint="table",
            requires_login=True,
        )
        with pytest.raises(WrapperError):
            system.onboard_from_listing(listing)
        table = system.onboard_from_listing(listing, credentials=("buyer", "secret"))
        assert len(table) == 1


class TestPaperExamples:
    def test_refills_query_reaches_ink_and_lead(self):
        """§3.1 C3: 'a user who requests information about refills can be
        given product entries for both ink and lead.'"""
        system, workload = build_system(supplier_count=6, products_per_supplier=40)
        sites = system.add_compute_sites(2)
        unified = None
        for spec in workload.suppliers:
            raw = system.scrape_supplier(f"{spec.name}.example", spec.name)
            table = system.normalize(raw, spec.name, spec.currency)
            unified = table if unified is None else unified.union_all(table)
        system.publish_catalog(unified, 1, [[sites[0], sites[1]]])
        system.set_vocabulary(workload.synonyms, workload.master_taxonomy)

        hits = {h.doc_id for h in system.search("refills", limit=40)}
        canonical_by_sku = {
            p["sku"]: p["canonical_name"] for p in workload.all_products()
        }
        found = {canonical_by_sku[sku] for sku in hits if sku in canonical_by_sku}
        # Both children of "Ink and lead refills" surface.
        assert any("ink" in name for name in found)
        assert "pencil lead refills" in found

"""Tests for the SQL lexer and parser."""

import pytest

from repro.sql import (
    Between,
    BinaryOp,
    Column,
    FuncCall,
    InList,
    Like,
    Literal,
    SqlLexError,
    SqlParseError,
    Star,
    UnaryOp,
    parse_sql,
    tokenize_sql,
)


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize_sql("SeLeCt * FrOm t")
        assert tokens[0].value == "select"
        assert tokens[0].kind == "keyword"

    def test_identifiers_keep_case(self):
        tokens = tokenize_sql("select Price from t")
        assert tokens[1].value == "Price"
        assert tokens[1].kind == "ident"

    def test_string_with_escaped_quote(self):
        tokens = tokenize_sql("select 'it''s' from t")
        assert tokens[1].value == "it's"

    def test_numbers(self):
        tokens = tokenize_sql("select 42, 3.14 from t")
        assert tokens[1].value == "42"
        assert tokens[3].value == "3.14"

    def test_two_char_operators(self):
        tokens = tokenize_sql("a <= b <> c >= d != e")
        values = [t.value for t in tokens if t.kind == "punct"]
        assert values == ["<=", "<>", ">=", "!="]

    def test_unterminated_string_rejected(self):
        with pytest.raises(SqlLexError):
            tokenize_sql("select 'oops from t")

    def test_bad_character_rejected(self):
        with pytest.raises(SqlLexError):
            tokenize_sql("select @ from t")

    def test_eof_token_always_present(self):
        assert tokenize_sql("")[-1].kind == "eof"

    def test_line_comment_skipped(self):
        tokens = tokenize_sql("select a -- the ? column\nfrom t")
        values = [t.value for t in tokens if t.kind != "eof"]
        assert values == ["select", "a", "from", "t"]

    def test_comment_at_end_of_text(self):
        tokens = tokenize_sql("select a from t -- trailing")
        assert [t.value for t in tokens if t.kind != "eof"] == [
            "select", "a", "from", "t",
        ]

    def test_minus_operator_not_a_comment(self):
        tokens = tokenize_sql("select a - b from t")
        assert ("punct", "-") in [(t.kind, t.value) for t in tokens]

    def test_double_dash_inside_string_kept(self):
        tokens = tokenize_sql("select '--not a comment' from t")
        assert tokens[1].kind == "string"
        assert tokens[1].value == "--not a comment"

    def test_commented_statement_parses(self):
        plan = parse_sql("select a from t where b = 1 -- why is this slow")
        assert plan is not None


class TestParserBasics:
    def test_select_star(self):
        statement = parse_sql("select * from parts")
        assert isinstance(statement.items[0].expr, Star)
        assert statement.table.name == "parts"

    def test_qualified_star(self):
        statement = parse_sql("select p.* from parts p")
        star = statement.items[0].expr
        assert isinstance(star, Star)
        assert star.qualifier == "p"

    def test_column_list_with_aliases(self):
        statement = parse_sql("select sku, name as part_name, price total from parts")
        assert statement.items[0].alias is None
        assert statement.items[1].alias == "part_name"
        assert statement.items[2].alias == "total"

    def test_table_alias(self):
        statement = parse_sql("select * from parts as p")
        assert statement.table.binding == "p"
        statement2 = parse_sql("select * from parts p")
        assert statement2.table.binding == "p"

    def test_distinct(self):
        assert parse_sql("select distinct sku from parts").distinct

    def test_join_on(self):
        statement = parse_sql(
            "select * from parts p join suppliers s on p.supplier_id = s.id"
        )
        assert len(statement.joins) == 1
        join = statement.joins[0]
        assert join.table.binding == "s"
        assert isinstance(join.condition, BinaryOp)

    def test_inner_join_keyword(self):
        statement = parse_sql("select * from a inner join b on a.x = b.x")
        assert len(statement.joins) == 1

    def test_multiple_joins(self):
        statement = parse_sql(
            "select * from a join b on a.x = b.x join c on b.y = c.y"
        )
        assert len(statement.joins) == 2

    def test_group_by_having(self):
        statement = parse_sql(
            "select sku, count(*) as n from parts group by sku having count(*) > 1"
        )
        assert len(statement.group_by) == 1
        assert statement.having is not None

    def test_order_by_and_limit(self):
        statement = parse_sql("select * from parts order by price desc, sku limit 5")
        assert statement.order_by[0].descending
        assert not statement.order_by[1].descending
        assert statement.limit == 5

    def test_limit_requires_integer(self):
        with pytest.raises(SqlParseError):
            parse_sql("select * from t limit 1.5")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlParseError):
            parse_sql("select * from t banana split extra")

    @pytest.mark.parametrize(
        "bad",
        ["", "select", "select from t", "select * from", "select * t",
         "select * from t where", "select * from t join x"],
    )
    def test_malformed_statements_rejected(self, bad):
        with pytest.raises(SqlParseError):
            parse_sql(bad)


class TestParserExpressions:
    def where(self, text):
        return parse_sql(f"select * from t where {text}").where

    def test_comparison(self):
        expr = self.where("price > 10")
        assert isinstance(expr, BinaryOp)
        assert expr.op == ">"
        assert expr.left == Column("price")
        assert expr.right == Literal(10)

    def test_diamond_normalized_to_bang_equals(self):
        assert self.where("a <> 1").op == "!="

    def test_and_or_precedence(self):
        expr = self.where("a = 1 or b = 2 and c = 3")
        assert expr.op == "or"
        assert expr.right.op == "and"

    def test_not(self):
        expr = self.where("not a = 1")
        assert isinstance(expr, UnaryOp)
        assert expr.op == "not"

    def test_parentheses_override(self):
        expr = self.where("(a = 1 or b = 2) and c = 3")
        assert expr.op == "and"
        assert expr.left.op == "or"

    def test_arithmetic_precedence(self):
        expr = self.where("a + b * 2 > 10")
        assert expr.left.op == "+"
        assert expr.left.right.op == "*"

    def test_like(self):
        expr = self.where("name like '%ink%'")
        assert isinstance(expr, Like)
        assert expr.pattern == "%ink%"

    def test_not_like(self):
        assert self.where("name not like 'x%'").negated

    def test_like_needs_string(self):
        with pytest.raises(SqlParseError):
            self.where("name like 5")

    def test_in_list(self):
        expr = self.where("sku in ('A-1', 'A-2')")
        assert isinstance(expr, InList)
        assert len(expr.items) == 2

    def test_not_in(self):
        assert self.where("sku not in ('A-1')").negated

    def test_between(self):
        expr = self.where("price between 1 and 10")
        assert isinstance(expr, Between)
        assert expr.low == Literal(1)

    def test_is_null_and_is_not_null(self):
        assert self.where("x is null").op == "is-null"
        assert self.where("x is not null").op == "is-not-null"

    def test_contains(self):
        expr = self.where("description contains 'ink'")
        assert expr.op == "contains"

    def test_function_call(self):
        expr = self.where("fuzzy(name, 'black ink') > 0.8")
        assert isinstance(expr.left, FuncCall)
        assert expr.left.name == "fuzzy"
        assert len(expr.left.args) == 2

    def test_count_star(self):
        statement = parse_sql("select count(*) from t")
        call = statement.items[0].expr
        assert call.star

    def test_qualified_column(self):
        expr = self.where("p.price = 1")
        assert expr.left == Column("price", qualifier="p")

    def test_negative_literal(self):
        expr = self.where("x = -5")
        assert isinstance(expr.right, UnaryOp)

    def test_boolean_and_null_literals(self):
        assert self.where("x = true").right == Literal(True)
        assert self.where("x = null").right == Literal(None)

    def test_string_literal(self):
        assert self.where("x = 'hello'").right == Literal("hello")

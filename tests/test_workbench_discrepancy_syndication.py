"""Tests for discrepancy detection and custom syndication."""

import pytest

from repro.core import DataType, Field, Schema, Table
from repro.core.errors import SyndicationError
from repro.workbench import (
    AvailabilityRule,
    CrossFieldRule,
    DiscrepancyDetector,
    DuplicateKeyRule,
    FormatRule,
    MissingValueRule,
    PricingRule,
    RangeRule,
    Recipient,
    Syndicator,
)
from repro.workbench.syndication import LegislatedFormat
from repro.xmlkit import xpath


def catalog_schema():
    return Schema(
        "catalog",
        (
            Field("sku", DataType.STRING),
            Field("name", DataType.STRING),
            Field("price", DataType.FLOAT),
            Field("qty", DataType.INTEGER),
            Field("reserve_qty", DataType.INTEGER),
            Field("currency", DataType.STRING),
        ),
    )


def catalog_table():
    return Table(
        catalog_schema(),
        [
            ("A-1", "black ink", 5.0, 10, 2, "USD"),
            ("A-2", None, -3.0, 0, 5, "USD"),
            ("a 3", "hex bolt", 1.25, 40, 0, "USD"),
            ("A-1", "black ink dup", 5.0, 1, 0, "USD"),
        ],
    )


class TestDiscrepancyRules:
    def test_missing_value_rule(self):
        report = DiscrepancyDetector([MissingValueRule("name")]).run(catalog_table())
        assert len(report) == 1
        assert report.findings[0].row_index == 1
        assert report.findings[0].severity == "error"

    def test_missing_value_with_default_is_fixable(self):
        detector = DiscrepancyDetector([MissingValueRule("name", default="UNKNOWN")])
        report = detector.run(catalog_table())
        fixed = DiscrepancyDetector.apply_fixes(catalog_table(), report.fixable())
        assert fixed.column("name")[1] == "UNKNOWN"

    def test_range_rule_with_clamp(self):
        detector = DiscrepancyDetector([RangeRule("price", minimum=0.0, clamp=True)])
        report = detector.run(catalog_table())
        assert len(report) == 1
        fixed = DiscrepancyDetector.apply_fixes(catalog_table(), report.fixable())
        assert fixed.column("price")[1] == 0.0

    def test_format_rule_with_normalizer_suggestion(self):
        detector = DiscrepancyDetector(
            [FormatRule("sku", r"[A-Z]+-\d+", normalizer=lambda s: s.upper().replace(" ", "-"))]
        )
        report = detector.run(catalog_table())
        assert len(report) == 1
        assert report.findings[0].suggested_value == "A-3"

    def test_duplicate_key_rule(self):
        report = DiscrepancyDetector([DuplicateKeyRule(["sku"])]).run(catalog_table())
        assert len(report) == 1
        assert report.findings[0].row_index == 3

    def test_cross_field_rule(self):
        rule = CrossFieldRule(
            "reserve-needs-stockout",
            lambda row: row["reserve_qty"] == 0 or row["qty"] is not None,
            "reserve without qty",
        )
        assert len(DiscrepancyDetector([rule]).run(catalog_table())) == 0

    def test_report_aggregations(self):
        detector = DiscrepancyDetector(
            [MissingValueRule("name"), RangeRule("price", minimum=0.0, clamp=True),
             DuplicateKeyRule(["sku"])]
        )
        report = detector.run(catalog_table())
        assert len(report) == 3
        assert len(report.errors()) == 2
        assert len(report.fixable()) == 1
        assert report.by_rule()["missing(name)"] == 1

    def test_findings_sorted_by_row(self):
        detector = DiscrepancyDetector([DuplicateKeyRule(["sku"]), MissingValueRule("name")])
        report = detector.run(catalog_table())
        assert [f.row_index for f in report.findings] == sorted(
            f.row_index for f in report.findings
        )


class TestSyndication:
    def make_syndicator(self):
        return Syndicator(
            pricing_rules=[
                PricingRule.tier_discount("preferred", 10.0),
                PricingRule(
                    "bulk-ink-surcharge",
                    applies=lambda r, row: "ink" in (row.get("name") or ""),
                    adjust=lambda price, row: price + 0.5,
                    priority=50,
                ),
            ],
            availability_rules=[AvailabilityRule.bump_for_tier("platinum")],
            exchange_rates={"USD": 1.0, "FRF": 0.14},
        )

    def test_standard_buyer_gets_list_price_plus_surcharge(self):
        syndicator = self.make_syndicator()
        result = syndicator.syndicate(catalog_table(), Recipient("shop", tier="standard"))
        prices = result.table.column("price")
        assert prices[0] == pytest.approx(5.5)   # ink surcharge
        assert prices[2] == pytest.approx(1.25)  # bolt untouched

    def test_preferred_buyer_discount_composes_after_surcharge(self):
        syndicator = self.make_syndicator()
        result = syndicator.syndicate(catalog_table(), Recipient("big", tier="preferred"))
        # surcharge (priority 50) first, then 10% off: (5.0 + 0.5) * 0.9
        assert result.table.column("price")[0] == pytest.approx(4.95)

    def test_platinum_sees_bumped_availability(self):
        syndicator = self.make_syndicator()
        plain = syndicator.syndicate(catalog_table(), Recipient("s", tier="standard"))
        platinum = syndicator.syndicate(catalog_table(), Recipient("p", tier="platinum"))
        assert plain.table.column("qty")[1] == 0
        assert platinum.table.column("qty")[1] == 5  # reserve released

    def test_currency_conversion_per_recipient(self):
        syndicator = self.make_syndicator()
        result = syndicator.syndicate(
            catalog_table(), Recipient("paris", tier="standard", currency="FRF")
        )
        # 1.25 USD -> FRF at 1/0.14, then no surcharge for bolts
        assert result.table.column("price")[2] == pytest.approx(1.25 / 0.14, rel=1e-3)
        assert result.table.column("currency")[2] == "FRF"

    def test_missing_rate_rejected(self):
        syndicator = self.make_syndicator()
        with pytest.raises(SyndicationError):
            syndicator.syndicate(catalog_table(), Recipient("tokyo", currency="JPY"))

    def test_csv_output(self):
        syndicator = self.make_syndicator()
        result = syndicator.syndicate(
            catalog_table(), Recipient("s", output_format="csv")
        )
        lines = result.payload.splitlines()
        assert lines[0].startswith("sku,name,price")
        assert len(lines) == 5

    def test_csv_quotes_commas(self):
        table = Table(catalog_schema(), [("A-1", "ink, black", 1.0, 1, 0, "USD")])
        result = Syndicator().syndicate(table, Recipient("s", output_format="csv"))
        assert '"ink, black"' in result.payload

    def test_canonical_xml_output(self):
        syndicator = self.make_syndicator()
        result = syndicator.syndicate(catalog_table(), Recipient("s", output_format="xml"))
        assert result.payload.tag == "catalog"
        assert len(xpath(result.payload, "//item")) == 4

    def test_legislated_xml_output(self):
        contract = LegislatedFormat(
            root_tag="cbl:catalog",
            row_tag="cbl:product",
            field_map={"cbl:id": "sku", "cbl:amount": "price"},
        )
        syndicator = self.make_syndicator()
        result = syndicator.syndicate(
            catalog_table(),
            Recipient("market", output_format="xml", legislated=contract),
        )
        products = result.payload.child_elements("cbl:product")
        assert len(products) == 4
        assert products[0].first("cbl:id").text == "A-1"

    def test_legislated_format_missing_column_is_enablement_gap(self):
        contract = LegislatedFormat("c", "p", {"id": "ghost_column"})
        with pytest.raises(SyndicationError):
            Syndicator().syndicate(
                catalog_table(), Recipient("m", output_format="xml", legislated=contract)
            )

    def test_unknown_output_format_rejected(self):
        with pytest.raises(SyndicationError):
            Syndicator().syndicate(catalog_table(), Recipient("s", output_format="fax"))

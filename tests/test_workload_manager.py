"""Tests for the multi-tenant workload manager and its schedulers.

Covers admission control (slots, per-tenant quotas, bounded queues with
shedding, queued-work deadlines), the three scheduling disciplines
(weighted-fair share convergence, strict priority, FIFO), the site
congestion gauges and their effect on agoric placement, the tenancy surface
of the DB-API driver, and the load-bearing property: a concurrent run of N
queries returns row-for-row the same answers as a serial run.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DataType, Field, Schema, Table
from repro.core.errors import (
    QueryError,
    QueryRejectedError,
    QueryTimeoutError,
)
from repro.federation import (
    FederatedEngine,
    FederationCatalog,
    Tenant,
    WorkloadManager,
    make_scheduler,
)
from repro.federation import dbapi
from repro.federation.workload import QueryState
from repro.sim import EventLoop, SimClock


def build_federation(sites=3, fragments=6, rows_per_fragment=20, **site_kwargs):
    """A small replicated federation: `items(k, v)` with RF=2 placement."""
    catalog = FederationCatalog(SimClock())
    site_names = [f"s{i}" for i in range(sites)]
    for name in site_names:
        catalog.make_site(name, **site_kwargs)
    schema = Schema(
        "items", (Field("k", DataType.STRING), Field("v", DataType.INTEGER))
    )
    total = fragments * rows_per_fragment
    table = Table(schema, [(f"k{i:04d}", i) for i in range(total)])
    placement = [
        [site_names[i % sites], site_names[(i + 1) % sites]]
        for i in range(fragments)
    ]
    catalog.load_fragmented(table, fragments, placement)
    engine = FederatedEngine(catalog)
    loop = EventLoop(catalog.clock)
    return catalog, engine, loop


def make_manager(scheduler="weighted-fair", max_in_flight=2, **federation_kwargs):
    catalog, engine, loop = build_federation(**federation_kwargs)
    manager = WorkloadManager(
        engine, loop, scheduler=scheduler, max_in_flight=max_in_flight
    )
    return catalog, engine, loop, manager


QUERY = "select count(*) from items"


class TestAdmissionControl:
    def test_submit_runs_and_resolves_via_loop(self):
        _, _, _, manager = make_manager()
        handle = manager.submit(QUERY, tenant="acme")
        assert handle.state is QueryState.RUNNING  # free slot: dispatched now
        manager.drain(handle)
        assert handle.done
        assert handle.result().table.rows == [(120,)]
        assert handle.result().report.tenant == "acme"

    def test_global_slot_limit_queues_excess(self):
        _, _, _, manager = make_manager(max_in_flight=2)
        handles = [manager.submit(QUERY) for _ in range(5)]
        running = [h for h in handles if h.state is QueryState.RUNNING]
        queued = [h for h in handles if h.state is QueryState.QUEUED]
        assert len(running) == 2
        assert len(queued) == 3
        assert manager.in_flight == 2
        assert manager.queued == 3
        manager.drain()
        assert all(h.state is QueryState.COMPLETED for h in handles)
        assert manager.in_flight == 0

    def test_per_tenant_quota_serializes_one_tenant(self):
        _, _, _, manager = make_manager(max_in_flight=4)
        manager.register_tenant("capped", max_concurrency=1)
        handles = [manager.submit(QUERY, tenant="capped") for _ in range(3)]
        assert sum(1 for h in handles if h.state is QueryState.RUNNING) == 1
        manager.drain()
        # Serialized: each next query started no earlier than the previous
        # finished.
        ordered = sorted(handles, key=lambda h: h.started_at)
        for earlier, later in zip(ordered, ordered[1:]):
            assert later.started_at >= earlier.finished_at

    def test_full_queue_sheds_load(self):
        _, _, _, manager = make_manager(max_in_flight=1)
        manager.register_tenant("bounded", queue_limit=2)
        manager.submit(QUERY, tenant="bounded")  # running
        manager.submit(QUERY, tenant="bounded")  # queued 1
        manager.submit(QUERY, tenant="bounded")  # queued 2
        with pytest.raises(QueryRejectedError) as excinfo:
            manager.submit(QUERY, tenant="bounded")
        assert excinfo.value.tenant == "bounded"
        assert excinfo.value.queue_limit == 2
        assert manager.tenants["bounded"].rejected == 1
        assert (
            manager.metrics.counter("workload.bounded.rejected").value == 1
        )
        manager.drain()  # the admitted three still complete

    def test_queued_deadline_times_out(self):
        _, _, _, manager = make_manager(max_in_flight=1)
        first = manager.submit(QUERY)
        # The first query's modeled response is well over this deadline, so
        # the queued one expires before a slot frees.
        second = manager.submit(QUERY, deadline=1e-6)
        manager.drain()
        assert first.state is QueryState.COMPLETED
        assert second.state is QueryState.TIMED_OUT
        with pytest.raises(QueryTimeoutError) as excinfo:
            second.result()
        assert excinfo.value.tenant == "default"
        assert manager.tenants["default"].timed_out == 1
        assert (
            manager.metrics.counter("workload.default.timed_out").value == 1
        )

    def test_deadline_is_queue_time_only(self):
        # A dispatched query runs to completion even if its modeled response
        # exceeds the deadline: deadlines bound *queueing*, not service.
        _, _, _, manager = make_manager(max_in_flight=1)
        handle = manager.submit(QUERY, deadline=1e-9)
        assert handle.state is QueryState.RUNNING
        manager.drain(handle)
        assert handle.state is QueryState.COMPLETED

    def test_result_before_resolution_raises(self):
        _, _, _, manager = make_manager(max_in_flight=1)
        manager.submit(QUERY)
        queued = manager.submit(QUERY)
        with pytest.raises(QueryError):
            queued.result()

    def test_engine_error_fails_the_handle_and_frees_the_slot(self):
        _, _, _, manager = make_manager(max_in_flight=1)
        bad = manager.submit("select count(*) from no_such_table")
        good = manager.submit(QUERY)
        manager.drain()
        assert bad.state is QueryState.FAILED
        with pytest.raises(QueryError):
            bad.result()
        assert good.state is QueryState.COMPLETED
        assert manager.tenants["default"].failed == 1

    def test_bad_parameters_rejected(self):
        catalog, engine, loop = build_federation()
        with pytest.raises(QueryError):
            WorkloadManager(engine, loop, max_in_flight=0)
        with pytest.raises(QueryError):
            WorkloadManager(engine, EventLoop(SimClock()))  # foreign clock
        manager = WorkloadManager(engine, loop)
        with pytest.raises(QueryError):
            manager.submit(QUERY, deadline=0.0)
        with pytest.raises(QueryError):
            manager.register_tenant("t", weight=0.0)
        with pytest.raises(ValueError):
            WorkloadManager(engine, loop, scheduler="lifo")


class TestSchedulers:
    def test_weighted_fair_share_converges_to_weights(self):
        _, _, _, manager = make_manager(max_in_flight=1)
        manager.register_tenant("gold", weight=3.0)
        manager.register_tenant("bronze", weight=1.0)
        handles = []
        for _ in range(40):
            handles.append(manager.submit(QUERY, tenant="gold"))
            handles.append(manager.submit(QUERY, tenant="bronze"))
        manager.drain()
        order = sorted(handles, key=lambda h: (h.started_at, h.seq))
        first_half = order[: len(order) // 2]
        gold_share = sum(
            1 for h in first_half if h.tenant.name == "gold"
        ) / len(first_half)
        # Throughput share converges to the 3:1 weight ratio (0.75).
        assert abs(gold_share - 0.75) < 0.1

    def test_idle_tenant_reenters_at_current_virtual_time(self):
        # A light tenant arriving into a flood is served next, not after the
        # aggressor's whole backlog.
        _, _, _, manager = make_manager(max_in_flight=1)
        flood = [manager.submit(QUERY, tenant="heavy") for _ in range(10)]
        light = manager.submit(QUERY, tenant="light")
        manager.drain()
        started_before_light = [
            h for h in flood if h.started_at < light.started_at
        ]
        assert len(started_before_light) <= 2

    def test_strict_priority_jumps_the_queue(self):
        _, _, _, manager = make_manager(scheduler="priority", max_in_flight=1)
        manager.submit(QUERY, priority=0)  # running
        low = manager.submit(QUERY, priority=0)
        high = manager.submit(QUERY, priority=5)
        manager.drain()
        assert high.started_at < low.started_at

    def test_fifo_is_arrival_order(self):
        _, _, _, manager = make_manager(scheduler="fifo", max_in_flight=1)
        handles = [manager.submit(QUERY) for _ in range(4)]
        manager.drain()
        starts = [h.started_at for h in handles]
        assert starts == sorted(starts)

    def test_fifo_and_fair_return_identical_result_contents(self):
        results = {}
        for scheduler in ("fifo", "weighted-fair"):
            _, _, _, manager = make_manager(
                scheduler=scheduler, max_in_flight=2
            )
            handles = [
                manager.submit("select k, v from items where v < 37"),
                manager.submit(QUERY, tenant="other"),
                manager.submit("select max(v) from items"),
            ]
            manager.drain()
            results[scheduler] = [h.result().table.rows for h in handles]
        assert results["fifo"] == results["weighted-fair"]

    def test_scheduler_alias_and_unknown(self):
        assert make_scheduler("fair").name == "weighted-fair"
        with pytest.raises(ValueError):
            make_scheduler("nope")


class TestCongestionModel:
    def test_gauges_rise_and_fall_with_in_flight_queries(self):
        catalog, _, _, manager = make_manager(max_in_flight=3)
        for _ in range(3):
            manager.submit(QUERY)
        assert any(s.active_scans > 0 for s in catalog.sites.values())
        manager.drain()
        assert all(s.active_scans == 0 for s in catalog.sites.values())
        assert max(s.peak_active_scans for s in catalog.sites.values()) >= 2

    def test_concurrent_service_times_inflate(self):
        # The same query costs more (modeled seconds) when dispatched beside
        # in-flight queries than alone on an idle federation.
        _, _, _, alone = make_manager(max_in_flight=4)
        solo = alone.submit(QUERY)
        alone.drain()
        _, _, _, busy = make_manager(max_in_flight=4)
        handles = [busy.submit(QUERY) for _ in range(4)]
        busy.drain()
        solo_seconds = solo.result().report.response_seconds
        # The first concurrent query saw an idle federation; the last saw
        # three in-flight queries' congestion.
        last = max(handles, key=lambda h: h.started_at is not None and h.seq)
        assert last.result().report.response_seconds > solo_seconds

    def test_congestion_pricing_steers_scans_to_idle_replica(self):
        # Two replicas of every fragment: one on site "a_hot" (which also
        # exclusively hosts a pinned table being hammered), one on "b_cold".
        # With congestion pricing the probe's scans land on the idle
        # replica; with the congestion curve flattened (alpha=0) the price
        # tie breaks alphabetically onto the loaded site.
        def run(alpha):
            catalog = FederationCatalog(SimClock())
            for name in ("a_hot", "b_cold"):
                catalog.make_site(
                    name, load_price_factor=0.0, congestion_alpha=alpha
                )
            schema = Schema("shared", (Field("k", DataType.STRING),))
            shared = Table(schema, [(f"k{i}",) for i in range(40)])
            catalog.load_fragmented(
                shared, 2, [["a_hot", "b_cold"], ["a_hot", "b_cold"]]
            )
            pinned_schema = Schema("pinned", (Field("p", DataType.STRING),))
            pinned = Table(pinned_schema, [(f"p{i}",) for i in range(400)])
            catalog.load_fragmented(pinned, 1, [["a_hot"]])
            engine = FederatedEngine(catalog)
            loop = EventLoop(catalog.clock)
            manager = WorkloadManager(engine, loop, max_in_flight=4)
            manager.submit("select count(*) from pinned", tenant="bg")
            probe = manager.submit("select count(*) from shared", tenant="probe")
            manager.drain()
            plan = probe.result().plan
            choices = plan.assignments["shared"].choices
            return sum(1 for c in choices if c.site_name == "a_hot")

        assert run(alpha=0.0) == 2  # ties: everything lands on the hot site
        assert run(alpha=0.5) == 0  # priced congestion: scans flee to idle


class TestReportingSurface:
    def test_report_carries_workload_fields(self):
        _, _, _, manager = make_manager(max_in_flight=1)
        first = manager.submit(QUERY, tenant="acme")
        second = manager.submit(QUERY, tenant="acme")
        manager.drain()
        report = second.result().report
        assert report.tenant == "acme"
        assert report.scheduler == "weighted-fair"
        assert report.queue_wait_seconds > 0
        assert report.queue_wait_seconds == pytest.approx(
            second.queue_wait_seconds
        )
        assert first.result().report.queue_wait_seconds == 0.0

    def test_explain_analyze_shows_tenant_and_queue_wait(self):
        _, _, _, manager = make_manager()
        rendered = manager.explain_analyze(QUERY, tenant="acme")
        assert "tenant: acme" in rendered
        assert "scheduler: weighted-fair" in rendered
        assert "queue wait:" in rendered
        assert "SiteScan" in rendered

    def test_plain_explain_analyze_has_no_tenant_line(self):
        _, engine, _, _ = make_manager()
        rendered = engine.explain(QUERY, analyze=True)
        assert "tenant:" not in rendered

    def test_per_tenant_metrics_recorded(self):
        _, _, _, manager = make_manager(max_in_flight=1)
        for _ in range(3):
            manager.submit(QUERY, tenant="acme")
        manager.drain()
        metrics = manager.metrics
        assert metrics.counter("workload.acme.admitted").value == 3
        assert metrics.counter("workload.acme.completed").value == 3
        assert metrics.histogram("workload.acme.queue_wait_seconds").count == 3
        assert metrics.histogram("workload.acme.service_seconds").count == 3
        assert metrics.histogram("workload.acme.total_seconds").count == 3
        assert metrics.gauge("workload.acme.queue_depth").value == 0
        assert metrics.gauge("workload.in_flight").value == 0
        assert manager.dispatched == 3

    def test_tenant_auto_registration(self):
        _, _, _, manager = make_manager()
        handle = manager.submit(QUERY, tenant="walk-in")
        assert "walk-in" in manager.tenants
        manager.drain(handle)
        assert manager.tenants["walk-in"].completed == 1
        with pytest.raises(QueryError):
            manager.register_tenant(Tenant("walk-in"))


class TestDbapiTenancy:
    def test_connection_routes_through_workload_manager(self):
        _, engine, loop, manager = make_manager(max_in_flight=1)
        connection = dbapi.connect(
            engine, workload=manager, tenant="partner-a", priority=1.0
        )
        cursor = connection.cursor()
        cursor.execute("select count(*) from items where v < ?", (50,))
        assert cursor.fetchone() == (50,)
        assert cursor.last_report.tenant == "partner-a"
        assert cursor.last_report.queue_wait_seconds >= 0.0
        assert manager.tenants["partner-a"].completed == 1

    def test_tenant_without_workload_rejected(self):
        _, engine, _, _ = make_manager()
        with pytest.raises(dbapi.InterfaceError):
            dbapi.connect(engine, tenant="acme")

    def test_plain_connection_still_works(self):
        _, engine, _, _ = make_manager()
        cursor = dbapi.connect(engine).cursor()
        cursor.execute(QUERY)
        assert cursor.fetchone() == (120,)
        assert cursor.last_report.tenant is None


POOL = [
    "select count(*) from items",
    "select k from items where v < 17",
    "select max(v) from items where v >= 40",
    "select k, v from items where v >= 100 and v < 111",
    "select count(*) from items where k < 'k0020'",
    "select min(v), max(v), count(*) from items",
]


class TestSerialEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(
        queries=st.lists(st.sampled_from(POOL), min_size=1, max_size=6),
        scheduler=st.sampled_from(["fifo", "weighted-fair", "priority"]),
        slots=st.integers(min_value=1, max_value=4),
    )
    def test_concurrent_matches_serial_row_for_row(
        self, queries, scheduler, slots
    ):
        # Serial: one fresh federation, queries run to completion in order.
        _, serial_engine, _ = build_federation()
        serial_rows = [
            serial_engine.query(sql).table.rows for sql in queries
        ]
        # Concurrent: an identical federation, everything submitted at once
        # under interleaved tenants, resolved through the event loop.
        _, _, _, manager = make_manager(
            scheduler=scheduler, max_in_flight=slots
        )
        handles = [
            manager.submit(sql, tenant=f"t{i % 2}")
            for i, sql in enumerate(queries)
        ]
        manager.drain()
        concurrent_rows = [h.result().table.rows for h in handles]
        assert concurrent_rows == serial_rows


class TestDeadlineDispatchRace:
    """The deadline event and the slot-freeing completion event can land on
    the same clock tick; the resolution must be deterministic."""

    def _solo_response(self):
        _, engine, _ = build_federation()
        return engine.query(QUERY, advance_clock=False).report.response_seconds

    def test_slot_free_at_exact_deadline_dispatches_not_times_out(self):
        # The first query's completion event was scheduled (at dispatch)
        # before the second's deadline event (at submit), so at the shared
        # tick the slot frees first and _start cancels the deadline.
        solo = self._solo_response()
        _, _, _, manager = make_manager(max_in_flight=1)
        first = manager.submit(QUERY)
        second = manager.submit(QUERY, deadline=solo)
        manager.drain()
        assert first.state is QueryState.COMPLETED
        assert second.state is QueryState.COMPLETED
        assert second.started_at == first.finished_at
        assert second.queue_wait_seconds == pytest.approx(solo)
        assert manager.tenants["default"].timed_out == 0

    def test_deadline_just_before_slot_free_times_out(self):
        solo = self._solo_response()
        _, _, _, manager = make_manager(max_in_flight=1)
        first = manager.submit(QUERY)
        second = manager.submit(QUERY, deadline=solo * 0.999)
        manager.drain()
        assert first.state is QueryState.COMPLETED
        assert second.state is QueryState.TIMED_OUT
        # The freed slot did not resurrect the expired submission, and the
        # manager is idle and reusable afterwards.
        assert manager.in_flight == 0
        replacement = manager.submit(QUERY)
        manager.drain(replacement)
        assert replacement.state is QueryState.COMPLETED

    def test_timeout_after_dispatch_same_tick_is_noop(self):
        # Losing side of the race: _timeout fires for a handle that was
        # dispatched at the same tick.  It must leave the running query
        # (and the tenant's accounting) untouched.
        _, _, _, manager = make_manager(max_in_flight=1)
        handle = manager.submit(QUERY, deadline=5.0)
        assert handle.state is QueryState.RUNNING
        manager._timeout(handle)
        assert handle.state is QueryState.RUNNING
        assert handle.error is None
        manager.drain(handle)
        assert handle.state is QueryState.COMPLETED
        assert manager.tenants["default"].timed_out == 0


class _Item:
    """Minimal scheduler item: seq, tenant_name, priority, weight."""

    def __init__(self, seq, tenant_name, weight=1.0, priority=0.0):
        self.seq = seq
        self.tenant_name = tenant_name
        self.weight = weight
        self.priority = priority


class TestWeightedFairPassAccounting:
    """Quota-ineligible tenants are *skipped* in pop, not charged."""

    def test_skipped_tenant_pass_is_not_advanced(self):
        scheduler = make_scheduler("weighted-fair")
        a_items = [_Item(1, "a"), _Item(3, "a")]
        b_items = [_Item(2, "b"), _Item(4, "b"), _Item(5, "b")]
        for item in a_items + b_items:
            scheduler.push(item)

        # While tenant a is over quota, b dispatches twice -- a's pass must
        # not move, so a is not punished for being skipped.
        not_a = lambda item: item.tenant_name != "a"  # noqa: E731
        assert scheduler.pop(not_a) is b_items[0]
        assert scheduler.pop(not_a) is b_items[1]
        # The moment a is eligible again it goes first: its pass (0.0) is
        # behind b's (2.0), exactly as if the skips never happened.
        everyone = lambda item: True  # noqa: E731
        assert scheduler.pop(everyone) is a_items[0]
        assert scheduler.pop(everyone) is a_items[1]
        assert scheduler.pop(everyone) is b_items[2]

    def test_all_ineligible_pops_nothing_and_charges_nothing(self):
        scheduler = make_scheduler("weighted-fair")
        scheduler.push(_Item(1, "a"))
        scheduler.push(_Item(2, "b"))
        nobody = lambda item: False  # noqa: E731
        assert scheduler.pop(nobody) is None
        assert len(scheduler) == 2
        # No pass was advanced by the failed pop: the next dispatch order
        # is untouched (a first by name on equal pass, then b).
        everyone = lambda item: True  # noqa: E731
        assert scheduler.pop(everyone).tenant_name == "a"
        assert scheduler.pop(everyone).tenant_name == "b"

    def test_quota_capped_tenant_keeps_fair_share_after_skips(self):
        # Integration: a quota-1 tenant is repeatedly skipped while its
        # query runs, yet still interleaves 1:1 with the other tenant once
        # slots free (no pass debt accumulated from the skips).
        _, _, _, manager = make_manager(max_in_flight=2)
        manager.register_tenant("capped", max_concurrency=1)
        capped = [manager.submit(QUERY, tenant="capped") for _ in range(3)]
        other = [manager.submit(QUERY, tenant="other") for _ in range(3)]
        manager.drain()
        assert all(h.state is QueryState.COMPLETED for h in capped + other)
        # Quota respected: capped never overlapped itself.
        ordered = sorted(capped, key=lambda h: h.started_at)
        for earlier, later in zip(ordered, ordered[1:]):
            assert later.started_at >= earlier.finished_at


class TestPreparedSubmission:
    """WorkloadManager.submit routes prepared templates with bindings."""

    def test_prepared_submission_matches_sql_submission(self):
        _, engine, _, manager = make_manager()
        prepared = engine.prepare("select count(*) from items where v < ?")
        via_prepared = manager.submit(prepared=prepared, params=(37,))
        via_sql = manager.submit("select count(*) from items where v < 37")
        manager.drain()
        assert via_prepared.result().table.rows == via_sql.result().table.rows
        assert via_prepared.result().report.tenant == "default"

    def test_exactly_one_of_sql_or_prepared(self):
        _, engine, _, manager = make_manager()
        prepared = engine.prepare(QUERY)
        with pytest.raises(QueryError):
            manager.submit(QUERY, prepared=prepared)
        with pytest.raises(QueryError):
            manager.submit()

    def test_prepared_rejects_max_staleness_override(self):
        # Staleness is fixed at prepare time (it shapes access-path
        # choice); overriding it per submission would silently serve the
        # wrong plan.
        _, engine, _, manager = make_manager()
        prepared = engine.prepare(QUERY)
        with pytest.raises(QueryError):
            manager.submit(prepared=prepared, max_staleness=10.0)

"""Mid-query fault tolerance: failover, retry budgets, degraded answers,
circuit breaking, and the failure machinery they all ride on."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DataType, Field, Schema, Table
from repro.core.errors import (
    PartialFailureError,
    QueryError,
    SourceUnavailableError,
)
from repro.federation import (
    CircuitState,
    FailureInjector,
    FederatedEngine,
    FederationCatalog,
    PlacementStrategy,
    RetryPolicy,
    SiteHealthTracker,
    place_fragments,
)
from repro.sim import EventLoop, SimClock
from repro.sql import build_plan, parse_sql


def parts_schema():
    return Schema(
        "parts",
        (
            Field("sku", DataType.STRING),
            Field("price", DataType.FLOAT),
        ),
    )


PARTS_ROWS = [(f"A-{i}", float(i)) for i in range(12)]


def make_engine(retry=None, site_count=4, replicas=None):
    """Four sites, 'parts' in two fragments, RF=2 each by default."""
    clock = SimClock()
    catalog = FederationCatalog(clock)
    for i in range(site_count):
        catalog.make_site(f"s{i}")
    table = Table(parts_schema(), PARTS_ROWS)
    catalog.load_fragmented(
        table, 2, replicas or [["s0", "s1"], ["s2", "s3"]]
    )
    return FederatedEngine(catalog, retry=retry)


def plan_for(engine, sql="select sku from parts"):
    return engine.optimizer.optimize(
        build_plan(
            parse_sql(sql),
            engine.catalog.binding_fields({"parts": "parts"}),
        )
    )


class TestScanFailover:
    def test_failover_charges_backoff_latency(self):
        engine = make_engine()
        plan = plan_for(engine)
        for assignment in plan.assignments.values():
            for choice in assignment.choices:
                engine.catalog.site(choice.site_name).up = False
        table, report = engine.executor.execute(plan)
        assert len(table) == 12
        assert report.failovers >= 1
        assert report.failover_attempts >= report.failovers
        assert report.retry_seconds > 0.0
        # Every failover's backoff pause flows into the scan pipeline, so
        # the response is at least as long as the modeled retries.
        assert report.response_seconds >= engine.retry.backoff_seconds(0)

    def test_failover_event_in_operator_stats(self):
        engine = make_engine()
        plan = plan_for(engine)
        dead = plan.assignments["parts"].choices[0].site_name
        engine.catalog.site(dead).up = False
        _, report = engine.executor.execute(plan)
        details = [s.detail for s in report.operators.walk() if s.detail]
        assert any(f"failover {dead}→" in d for d in details)
        assert any("retry" in d for d in details)

    def test_retry_budget_zero_forbids_failover(self):
        engine = make_engine(retry=RetryPolicy(budget=0))
        plan = plan_for(engine)
        for choice in plan.assignments["parts"].choices:
            engine.catalog.site(choice.site_name).up = False
        with pytest.raises(PartialFailureError):
            engine.executor.execute(plan)

    def test_failover_disabled_reproduces_raw_failure(self):
        engine = make_engine(retry=RetryPolicy(enabled=False))
        plan = plan_for(engine)
        dead = plan.assignments["parts"].choices[0].site_name
        engine.catalog.site(dead).up = False
        with pytest.raises(SourceUnavailableError) as excinfo:
            engine.executor.execute(plan)
        assert excinfo.value.site == dead
        assert excinfo.value.fragment is not None
        assert "parts/" in excinfo.value.fragment

    def test_failover_feeds_health_tracker(self):
        engine = make_engine()
        plan = plan_for(engine)
        dead = plan.assignments["parts"].choices[0].site_name
        engine.catalog.site(dead).up = False
        engine.executor.execute(plan)
        assert engine.health.health(dead).total_failures >= 1
        assert engine.health.health(dead).consecutive_failures >= 1


class TestDegradedAnswers:
    def kill_fragment_replicas(self, engine, fragment_index=0):
        fragment = engine.catalog.entry("parts").fragments[fragment_index]
        for name in fragment.replica_sites():
            engine.catalog.site(name).up = False
        return fragment

    def test_partial_failure_error_is_structured(self):
        engine = make_engine()
        fragment = self.kill_fragment_replicas(engine)
        with pytest.raises(PartialFailureError) as excinfo:
            engine.query("select sku from parts")
        error = excinfo.value
        assert f"parts/{fragment.fragment_id}" in error.unreachable_fragments
        assert set(error.dead_sites) == set(fragment.replica_sites())
        assert isinstance(error, QueryError)  # old handlers keep working
        assert engine.metrics.counter("queries.partial_failures").value == 1

    def test_degraded_ok_returns_partial_answer(self):
        engine = make_engine()
        fragment = self.kill_fragment_replicas(engine)
        result = engine.query("select sku from parts", degraded_ok=True)
        report = result.report
        assert report.degraded
        assert 0.0 < report.completeness < 1.0
        assert report.completeness == pytest.approx(
            1.0 - fragment.estimated_rows / len(PARTS_ROWS)
        )
        assert f"parts/{fragment.fragment_id}" in report.unreachable_fragments
        assert set(report.dead_sites) == set(fragment.replica_sites())
        # The reachable fragment's rows still come back.
        assert 0 < len(result.table) < len(PARTS_ROWS)
        assert engine.metrics.counter("queries.degraded").value == 1

    def test_degraded_scan_not_captured_in_cache(self):
        from repro.federation import SemanticCache

        clock = SimClock()
        catalog = FederationCatalog(clock)
        for i in range(4):
            catalog.make_site(f"s{i}")
        catalog.load_fragmented(
            Table(parts_schema(), PARTS_ROWS), 2, [["s0", "s1"], ["s2", "s3"]]
        )
        cache = SemanticCache(clock, max_rows=100_000)
        engine = FederatedEngine(catalog, cache=cache)
        for name in ("s0", "s1"):
            catalog.site(name).up = False
        engine.query("select sku from parts", degraded_ok=True)
        # A partial scan must not become a cached "answer" for the region.
        assert cache.lookup("parts", []) is None

    def test_complete_answer_reports_full_completeness(self):
        engine = make_engine()
        result = engine.query("select sku from parts")
        assert result.report.completeness == 1.0
        assert not result.report.degraded
        assert result.report.unreachable_fragments == []


class TestSiteHealthTracker:
    def make(self, **kwargs):
        clock = SimClock()
        defaults = dict(failure_threshold=3, cooldown_seconds=60.0)
        defaults.update(kwargs)
        return clock, SiteHealthTracker(clock, **defaults)

    def test_circuit_trips_at_threshold(self):
        _, tracker = self.make()
        for _ in range(2):
            tracker.record_failure("s0")
        assert tracker.state("s0") is CircuitState.CLOSED
        tracker.record_failure("s0")
        assert tracker.state("s0") is CircuitState.OPEN
        assert not tracker.allow("s0")
        assert tracker.trips == 1

    def test_half_open_after_cooldown_and_close_on_success_streak(self):
        clock, tracker = self.make()  # default half_open_successes=2
        for _ in range(3):
            tracker.record_failure("s0")
        clock.advance(60.0)
        assert tracker.state("s0") is CircuitState.HALF_OPEN
        assert tracker.allow("s0")  # probes allowed through
        tracker.record_success("s0")
        # One lucky probe must not fully restore trust.
        assert tracker.state("s0") is CircuitState.HALF_OPEN
        tracker.record_success("s0")
        assert tracker.state("s0") is CircuitState.CLOSED
        assert tracker.health("s0").consecutive_failures == 0

    def test_single_probe_streak_closes_immediately(self):
        clock, tracker = self.make(half_open_successes=1)
        for _ in range(3):
            tracker.record_failure("s0")
        clock.advance(60.0)
        tracker.record_success("s0")
        assert tracker.state("s0") is CircuitState.CLOSED

    def test_flapping_site_never_closes_on_alternating_probes(self):
        # Regression for the flap that motivated the streak: a site that
        # alternates probe success / probe failure must stay broken.
        clock, tracker = self.make(half_open_successes=2)
        for _ in range(3):
            tracker.record_failure("s0")
        for _ in range(5):
            clock.advance(60.0)
            assert tracker.state("s0") is CircuitState.HALF_OPEN
            tracker.record_success("s0")  # one good probe...
            assert tracker.state("s0") is CircuitState.HALF_OPEN
            tracker.record_failure("s0")  # ...then the flap
            assert tracker.state("s0") is CircuitState.OPEN
        # A clean streak finally closes it.
        clock.advance(60.0)
        tracker.record_success("s0")
        tracker.record_success("s0")
        assert tracker.state("s0") is CircuitState.CLOSED

    def test_success_while_fully_open_earns_nothing(self):
        clock, tracker = self.make(half_open_successes=1)
        for _ in range(3):
            tracker.record_failure("s0")
        assert tracker.state("s0") is CircuitState.OPEN
        tracker.record_success("s0")  # forced traffic, not a probe
        assert tracker.state("s0") is CircuitState.OPEN
        assert tracker.health("s0").probe_successes == 0

    def test_tracker_rejects_degenerate_parameters(self):
        clock = SimClock()
        with pytest.raises(ValueError, match="cooldown_seconds"):
            SiteHealthTracker(clock, cooldown_seconds=0.0)
        with pytest.raises(ValueError, match="cooldown_seconds"):
            SiteHealthTracker(clock, cooldown_seconds=-5.0)
        with pytest.raises(ValueError, match="risk_decay_seconds"):
            SiteHealthTracker(clock, risk_decay_seconds=0.0)
        with pytest.raises(ValueError, match="half_open_successes"):
            SiteHealthTracker(clock, half_open_successes=0)
        with pytest.raises(ValueError, match="failure_threshold"):
            SiteHealthTracker(clock, failure_threshold=0)

    def test_failed_half_open_probe_reopens(self):
        clock, tracker = self.make()
        for _ in range(3):
            tracker.record_failure("s0")
        clock.advance(60.0)
        assert tracker.state("s0") is CircuitState.HALF_OPEN
        tracker.record_failure("s0")
        assert tracker.state("s0") is CircuitState.OPEN

    def test_risk_penalty_decays(self):
        clock, tracker = self.make(risk_decay_seconds=100.0)
        tracker.record_failure("s0")
        fresh = tracker.risk_penalty("s0")
        assert fresh > 0.0
        clock.advance(50.0)
        assert 0.0 < tracker.risk_penalty("s0") < fresh
        clock.advance(60.0)
        assert tracker.risk_penalty("s0") == 0.0
        assert tracker.price_multiplier("s0") == 1.0

    def test_prefer_orders_by_risk_never_drops(self):
        _, tracker = self.make()
        for _ in range(3):
            tracker.record_failure("s2")
        tracker.record_failure("s1")
        ordered = tracker.prefer(["s2", "s1", "s0"])
        assert ordered == ["s0", "s1", "s2"]  # healthy, risky, tripped

    def test_flaky_site_priced_out_of_the_market(self):
        engine = make_engine()
        # Make s0 look flaky (but keep it up so it still bids).
        engine.health.record_failure("s0")
        engine.health.record_failure("s0")
        plan = plan_for(engine)
        chosen = {c.site_name for c in plan.assignments["parts"].choices}
        assert "s0" not in chosen  # its risk-inflated ask lost the auction


class TestSatelliteFixes:
    def test_quote_scan_on_down_site_raises(self):
        engine = make_engine()
        site = engine.catalog.site("s0")
        source_name = next(iter(site.hosted_names))
        site.up = False
        with pytest.raises(SourceUnavailableError) as excinfo:
            site.quote_scan(source_name)
        assert excinfo.value.site == "s0"

    def test_source_unavailable_carries_context(self):
        error = SourceUnavailableError("s3", fragment="parts/f1")
        assert error.site == "s3"
        assert error.fragment == "parts/f1"

    def test_scheduled_refresh_survives_dead_base_site(self):
        engine = make_engine(replicas=[["s0"], ["s0"]])  # single-host base
        loop = EventLoop(engine.catalog.clock)
        view = engine.create_materialized_view(
            "parts_mv", "parts", "s1", refresh_interval=100.0
        )
        engine.schedule_view_refresh(view, loop)
        engine.catalog.site("s0").up = False
        loop.run_until(250.0)  # two refresh ticks fire against a dead base
        assert view.refresh_failures == 2
        assert engine.metrics.counter("view.refresh_failures").value == 2
        # The base repairs; the next tick refreshes normally again.
        engine.catalog.site("s0").up = True
        refreshes_before = view.refresh_count
        loop.run_until(350.0)
        assert view.refresh_count == refreshes_before + 1
        assert view.refresh_failures == 2


class TestFailureInjector:
    def run_injector(self, seed=7, horizon=5000.0, **kwargs):
        clock = SimClock()
        catalog = FederationCatalog(clock)
        for i in range(4):
            catalog.make_site(f"s{i}")
        loop = EventLoop(clock)
        injector = FailureInjector(
            loop, catalog, mttf=100.0, mttr=20.0,
            rng=random.Random(seed), **kwargs
        )
        injector.start()
        loop.run_until(horizon)
        return injector

    def test_same_seed_identical_schedule(self):
        first = self.run_injector(seed=7)
        second = self.run_injector(seed=7)
        assert first.history == second.history
        assert len(first.history) > 0

    def test_different_seed_different_schedule(self):
        assert self.run_injector(seed=7).history != self.run_injector(seed=8).history

    def test_concurrency_cap_respected(self):
        injector = self.run_injector(max_concurrent_failures=1)
        down = set()
        for _, name, kind in injector.history:
            if kind == "fail":
                down.add(name)
            else:
                down.discard(name)
            assert len(down) <= 1
        assert injector.skipped_failures > 0

    def test_cap_must_be_positive(self):
        with pytest.raises(QueryError):
            self.run_injector(max_concurrent_failures=0)


class TestPlaceFragmentsEdgeCases:
    def test_no_sites_raises(self):
        with pytest.raises(QueryError):
            place_fragments(PlacementStrategy.CENTRAL, 4, [])

    def test_hot_standby_needs_two_sites(self):
        with pytest.raises(QueryError):
            place_fragments(PlacementStrategy.HOT_STANDBY, 4, ["only"])

    def test_bad_replication_factor_raises(self):
        with pytest.raises(QueryError):
            place_fragments(
                PlacementStrategy.FRAGMENT_REPLICATE, 4, ["a", "b"], 0
            )

    def test_replication_factor_clamped_to_site_count(self):
        placement = place_fragments(
            PlacementStrategy.FRAGMENT_REPLICATE, 3, ["a", "b"], 5
        )
        assert all(sorted(replicas) == ["a", "b"] for replicas in placement)

    def test_zero_fragments_gives_empty_placement(self):
        assert place_fragments(PlacementStrategy.CENTRAL, 0, ["a"]) == []

    def test_replicas_are_distinct_sites(self):
        placement = place_fragments(
            PlacementStrategy.FRAGMENT_REPLICATE, 8, [f"s{i}" for i in range(5)], 3
        )
        for replicas in placement:
            assert len(replicas) == len(set(replicas)) == 3


class TestFailoverEquivalence:
    """Failover answers equal no-failure answers whenever every fragment
    keeps at least one live replica (the §3.2 C8 "most of the content all
    of the time" guarantee, at query level)."""

    @settings(max_examples=25, deadline=None)
    @given(dead=st.sets(st.integers(min_value=0, max_value=3), max_size=3))
    def test_failover_preserves_answers(self, dead):
        engine = make_engine()
        baseline = sorted(
            engine.query("select sku from parts where price >= 2").table.column(
                "sku"
            )
        )

        engine = make_engine()
        plan = plan_for(engine, "select sku from parts where price >= 2")
        dead_names = {f"s{i}" for i in dead}
        # Only kill subsets that keep >=1 live replica per fragment.
        for fragment in engine.catalog.entry("parts").fragments:
            live = set(fragment.replica_sites()) - dead_names
            if not live:
                return
        for name in dead_names:
            engine.catalog.site(name).up = False
        table, report = engine.executor.execute(plan)
        assert sorted(table.column("sku")) == baseline
        assert report.completeness == 1.0

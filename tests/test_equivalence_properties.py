"""Cross-cutting equivalence properties.

The paper's data-independence argument (§3.2 C5) has a testable core: the
*answer* to a query must not depend on physical decisions -- predicate
pushdown, cache hits, replica choice, optimizer brand.  These tests state
that as properties and drive them with generated tables and queries.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DataType, Field, Schema, Table
from repro.federation import (
    AgoricOptimizer,
    CentralizedOptimizer,
    FederatedEngine,
    FederationCatalog,
    SemanticCache,
)
from repro.htmlkit import parse_html
from repro.sim import SimClock
from repro.sql import build_plan, parse_sql
from repro.sql.lexer import SqlLexError, tokenize_sql


def build_engine(rows, optimizer=None, cache=None, fragment_count=2, seed=0):
    clock = SimClock()
    catalog = FederationCatalog(clock)
    names = [catalog.make_site(f"s{i}").name for i in range(4)]
    schema = Schema(
        "t",
        (
            Field("k", DataType.INTEGER),
            Field("v", DataType.INTEGER),
            Field("tag", DataType.STRING),
        ),
    )
    table = Table(schema, rows, validate=False)
    placement = [[names[i % 4], names[(i + 1) % 4]] for i in range(fragment_count)]
    catalog.load_fragmented(table, fragment_count, placement)
    engine = FederatedEngine(
        catalog,
        optimizer=optimizer(catalog) if optimizer else None,
        cache=cache(clock) if cache else None,
    )
    return engine


def build_join_engine(t_rows, u_rows, fragment_count=2):
    """Two fragmented tables sharing column name ``k`` (ambiguity on purpose)."""
    clock = SimClock()
    catalog = FederationCatalog(clock)
    names = [catalog.make_site(f"s{i}").name for i in range(4)]
    t_schema = Schema(
        "t",
        (
            Field("k", DataType.INTEGER),
            Field("v", DataType.INTEGER),
            Field("tag", DataType.STRING),
        ),
    )
    u_schema = Schema(
        "u",
        (Field("k", DataType.INTEGER), Field("w", DataType.INTEGER)),
    )
    placement = [[names[i % 4], names[(i + 1) % 4]] for i in range(fragment_count)]
    catalog.load_fragmented(
        Table(t_schema, t_rows, validate=False), fragment_count, placement
    )
    catalog.load_fragmented(
        Table(u_schema, u_rows, validate=False), fragment_count, placement
    )
    return FederatedEngine(catalog)


rows_strategy = st.lists(
    st.tuples(
        st.integers(min_value=-50, max_value=50),
        st.integers(min_value=-50, max_value=50),
        st.sampled_from(["a", "b", "c"]),
    ),
    min_size=1,
    max_size=60,
)

# Integer-or-NULL values: exact arithmetic, so partial/final aggregate
# splitting must agree with the single-pass baseline to the last bit.
nullable_rows_strategy = st.lists(
    st.tuples(
        st.integers(min_value=-10, max_value=10),
        st.one_of(st.none(), st.integers(min_value=-50, max_value=50)),
        st.sampled_from(["a", "b", "c"]),
    ),
    min_size=1,
    max_size=50,
)

u_rows_strategy = st.lists(
    st.tuples(
        st.integers(min_value=-10, max_value=10),
        st.one_of(st.none(), st.integers(min_value=-20, max_value=20)),
    ),
    min_size=1,
    max_size=30,
)

# The mix the satellite asks for: joins (inner/outer), aggregates (split
# and coordinator-side), LIMIT, and NULL-bearing columns.
join_query_strategy = st.sampled_from(
    [
        "select t.k, u.w from t join u on t.k = u.k",
        "select t.k, t.v, u.w from t join u on t.k = u.k "
        "where t.v > 0 and u.w < 20",
        "select t.k, u.w from t left join u on t.k = u.k where t.tag = 'a'",
        "select t.tag, count(u.w) as n from t left join u on t.k = u.k "
        "group by t.tag order by t.tag",
        "select t.k from t join u on t.k = u.k where t.v > 0 or u.w > 0",
        "select t.k, u.w from t left join u on t.k = u.k "
        "order by t.k, u.w limit 6",
    ]
)

nullable_query_strategy = st.sampled_from(
    [
        "select tag, count(v) as n, sum(v) as s from t group by tag order by tag",
        "select count(*) as n, max(v) as m from t",
        "select min(v) as lo, avg(v) as a from t where k > 5",
        "select k from t where v = 0 or v > 5 order by k limit 4",
        "select tag, avg(v) as a from t where k >= 0 group by tag order by tag",
    ]
)

query_strategy = st.sampled_from(
    [
        "select k, v from t where v > 0",
        "select k from t where v >= 10 and k < 5",
        "select k, v, tag from t where tag = 'a'",
        "select k from t where v > 0 or k = 0",
        "select tag, count(*) as n from t group by tag order by tag",
        "select k from t order by v desc, k limit 7",
        "select distinct tag from t",
    ]
)


def answer_set(result):
    return sorted(map(repr, result.table.rows))


def is_fully_pruned(assignment):
    """A zero-price fragment plan whose zone maps proved every fragment
    empty -- it legitimately outbids even a covering cache region."""
    return (
        assignment.kind == "fragments"
        and assignment.total_fragments > 0
        and assignment.pruned_fragments >= assignment.total_fragments
    )


class TestPhysicalIndependence:
    @settings(max_examples=25, deadline=None)
    @given(rows_strategy, query_strategy)
    def test_pushdown_never_changes_answers(self, rows, sql):
        engine = build_engine(rows)
        with_pushdown = engine.query(sql, advance_clock=False)

        # Same logical query, planner blinded to the schema (no pushdown).
        statement = parse_sql(sql)
        blind_plan = build_plan(statement)
        physical = engine.optimizer.optimize(blind_plan)
        table, _ = engine.executor.execute(physical)
        assert sorted(map(repr, table.rows)) == answer_set(with_pushdown)

    @settings(max_examples=25, deadline=None)
    @given(nullable_rows_strategy, u_rows_strategy, join_query_strategy)
    def test_site_pushdown_matches_coordinator_baseline_on_joins(
        self, t_rows, u_rows, sql
    ):
        """Full rewrite pipeline (site filters, pruning, splitting) vs a
        pushdown-disabled plan that ships every row and evaluates at the
        coordinator: answers must be row-identical."""
        engine = build_join_engine(t_rows, u_rows)
        pushed = engine.query(sql, advance_clock=False)

        statement = parse_sql(sql)
        blind_plan = build_plan(statement)  # no pushdown, no rewrite passes
        physical = engine.optimizer.optimize(blind_plan)
        table, _ = engine.executor.execute(physical)
        assert sorted(map(repr, table.rows)) == answer_set(pushed)

    @settings(max_examples=25, deadline=None)
    @given(nullable_rows_strategy, nullable_query_strategy)
    def test_split_aggregates_match_baseline_with_nulls(self, rows, sql):
        """Partial/final aggregation over NULL-bearing integer columns must
        agree exactly with the unsplit coordinator aggregation."""
        engine = build_engine(rows)
        pushed = engine.query(sql, advance_clock=False)

        statement = parse_sql(sql)
        blind_plan = build_plan(statement)
        physical = engine.optimizer.optimize(blind_plan)
        table, _ = engine.executor.execute(physical)
        assert sorted(map(repr, table.rows)) == answer_set(pushed)

    @settings(max_examples=15, deadline=None)
    @given(rows_strategy, query_strategy)
    def test_optimizer_brand_never_changes_answers(self, rows, sql):
        agoric = build_engine(rows, optimizer=AgoricOptimizer)
        central = build_engine(rows, optimizer=CentralizedOptimizer)
        assert answer_set(agoric.query(sql, advance_clock=False)) == answer_set(
            central.query(sql, advance_clock=False)
        )

    @settings(max_examples=15, deadline=None)
    @given(rows_strategy, query_strategy)
    def test_cache_hits_never_change_answers(self, rows, sql):
        engine = build_engine(rows, cache=lambda clock: SemanticCache(clock))
        cold = engine.query(sql, advance_clock=False)
        warm = engine.query(sql, advance_clock=False)
        assert answer_set(cold) == answer_set(warm)

    @settings(max_examples=30, deadline=None)
    @given(
        rows_strategy,
        st.integers(min_value=-40, max_value=30),
        st.integers(min_value=0, max_value=20),
        st.integers(min_value=-50, max_value=50),
    )
    def test_implication_covered_hits_match_bypass(self, rows, low, shrink, k_cap):
        """A narrower region served out of a wider cached region (interval
        subsumption + local residual predicates) must be row-identical to a
        cache-less engine answering the same narrow query."""
        wide = f"select k, v, tag from t where v > {low}"
        narrow = (
            f"select k, v, tag from t where v > {low + shrink} and k <= {k_cap}"
        )
        cached = build_engine(rows, cache=lambda clock: SemanticCache(clock))
        bypass = build_engine(rows)

        cached.query(wide, advance_clock=False)
        hit = cached.query(narrow, advance_clock=False)
        # v > low always covers v > low + shrink (shrink >= 0), so the
        # narrow query must exercise the cache path -- unless zone-map
        # pruning proved the scan empty, in which case a zero-price
        # fully-pruned fragment plan legitimately outbids the cache.
        assignment = hit.plan.assignments["t"]
        assert assignment.kind == "cache" or is_fully_pruned(assignment)
        if is_fully_pruned(assignment):
            assert len(hit.table) == 0
        assert answer_set(hit) == answer_set(
            bypass.query(narrow, advance_clock=False)
        )

    @settings(max_examples=20, deadline=None)
    @given(
        rows_strategy,
        st.integers(min_value=-40, max_value=30),
        st.integers(min_value=1, max_value=20),
    )
    def test_equality_probe_served_from_range_region(self, rows, low, offset):
        """v = c lies inside a cached v > low region whenever c > low; the
        equality is applied as a residual and must match the bypass."""
        wide = f"select k, v, tag from t where v > {low}"
        probe = f"select k, tag from t where v = {low + offset}"
        cached = build_engine(rows, cache=lambda clock: SemanticCache(clock))
        bypass = build_engine(rows)

        cached.query(wide, advance_clock=False)
        hit = cached.query(probe, advance_clock=False)
        assignment = hit.plan.assignments["t"]
        assert assignment.kind == "cache" or is_fully_pruned(assignment)
        assert answer_set(hit) == answer_set(
            bypass.query(probe, advance_clock=False)
        )

    @settings(max_examples=10, deadline=None)
    @given(rows_strategy, query_strategy)
    def test_fragmentation_degree_never_changes_answers(self, rows, sql):
        one = build_engine(rows, fragment_count=1)
        four = build_engine(rows, fragment_count=4)
        assert answer_set(one.query(sql, advance_clock=False)) == answer_set(
            four.query(sql, advance_clock=False)
        )

    def test_replica_failure_never_changes_answers(self):
        rng = random.Random(5)
        rows = [(i, rng.randrange(-50, 50), rng.choice("abc")) for i in range(50)]
        sql = "select tag, count(*) as n from t group by tag order by tag"
        engine = build_engine(rows)
        healthy = answer_set(engine.query(sql, advance_clock=False))
        engine.catalog.site("s0").up = False
        degraded = answer_set(engine.query(sql, advance_clock=False))
        assert healthy == degraded


class TestParserRobustness:
    @settings(max_examples=200, deadline=None)
    @given(st.text(max_size=200))
    def test_html_parser_never_raises(self, markup):
        document = parse_html(markup)
        assert document.tag == "document"

    @settings(max_examples=200, deadline=None)
    @given(st.text(max_size=120))
    def test_sql_lexer_raises_only_its_own_error(self, text):
        try:
            tokens = tokenize_sql(text)
            assert tokens[-1].kind == "eof"
        except SqlLexError:
            pass

    @settings(max_examples=150, deadline=None)
    @given(st.text(max_size=120))
    def test_sql_parser_raises_only_its_own_errors(self, text):
        from repro.sql import SqlParseError, parse_sql

        try:
            parse_sql(text)
        except (SqlLexError, SqlParseError):
            pass

    @settings(max_examples=100, deadline=None)
    @given(st.text(max_size=150))
    def test_xml_parser_raises_only_its_own_error(self, markup):
        from repro.xmlkit import XmlParseError, parse_xml

        try:
            parse_xml(markup)
        except XmlParseError:
            pass

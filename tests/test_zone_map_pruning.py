"""Zone-map statistics, partition elimination, and the planner bugfixes.

The soundness contract under test: pruning a fragment must never change an
answer -- `fragment_can_match` may return False only when *no* row of the
fragment can satisfy the pushed-down predicates.  The end-to-end sections
check the paying consequences: fewer sites contacted, fewer rows shipped,
identical results, and `pruned k/n` surfaced in EXPLAIN and the metrics.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.connect.source import Predicate
from repro.core import DataType, Field, Schema, Table
from repro.core.errors import QueryError
from repro.federation import (
    AgoricOptimizer,
    CentralizedOptimizer,
    ColumnStats,
    FederatedEngine,
    FederationCatalog,
    PolicyOptimizer,
    RoundRobinPolicy,
    ZoneMap,
    fallback_selectivity,
    fragment_can_match,
    fragment_selectivity,
    zone_selectivity,
)
from repro.sim import SimClock


ORDERS_SCHEMA = Schema(
    "orders",
    (
        Field("id", DataType.INTEGER),
        Field("qty", DataType.INTEGER),
        Field("tag", DataType.STRING),
    ),
)


def orders_rows(n=160):
    return [(i, i, f"t{i % 3}") for i in range(n)]


def build_engine(
    rows=None,
    fragment_count=16,
    site_count=8,
    optimizer=None,
    range_column="qty",
):
    """A range-partitioned orders table across ``site_count`` sites."""
    clock = SimClock()
    catalog = FederationCatalog(clock)
    names = [catalog.make_site(f"s{i}").name for i in range(site_count)]
    table = Table(ORDERS_SCHEMA, rows if rows is not None else orders_rows())
    placement = [
        [names[i % site_count], names[(i + 1) % site_count]]
        for i in range(fragment_count)
    ]
    if range_column is None:
        catalog.load_fragmented(table, fragment_count, placement)
    else:
        catalog.load_range_partitioned(
            table, range_column, fragment_count, placement
        )
    opt = optimizer(catalog) if optimizer else None
    return FederatedEngine(catalog, optimizer=opt)


def strip_zone_maps(engine):
    """Disable pruning: the seed behavior (no statistics anywhere)."""
    for entry in engine.catalog.tables.values():
        for fragment in entry.fragments:
            fragment.zone_map = None
    return engine


def answers(result):
    return sorted(map(repr, result.table.rows))


class TestZoneMapCollection:
    def test_from_table_records_min_max_nulls_distinct(self):
        schema = Schema(
            "x", (Field("a", DataType.INTEGER), Field("b", DataType.STRING))
        )
        table = Table(schema, [(3, "p"), (None, "p"), (7, None), (5, "q")])
        zone = ZoneMap.from_table(table)
        assert zone.row_count == 4
        assert zone.columns["a"] == ColumnStats(
            minimum=3, maximum=7, null_count=1, distinct=3
        )
        assert zone.columns["b"] == ColumnStats(
            minimum="p", maximum="q", null_count=1, distinct=2
        )

    def test_load_range_partitioned_stamps_disjoint_intervals(self):
        engine = build_engine(fragment_count=4)
        fragments = engine.catalog.entry("orders").fragments
        intervals = [
            (f.zone_map.columns["qty"].minimum, f.zone_map.columns["qty"].maximum)
            for f in fragments
        ]
        assert intervals == [(0, 39), (40, 79), (80, 119), (120, 159)]

    def test_update_notification_drops_zone_maps(self):
        engine = build_engine(fragment_count=4)
        engine.catalog.notify_table_updated("orders")
        assert all(
            f.zone_map is None for f in engine.catalog.entry("orders").fragments
        )

    def test_repartition_restamps_fresh_zone_maps(self):
        engine = build_engine(fragment_count=4, site_count=4)
        names = [f"s{i}" for i in range(4)]
        engine.catalog.repartition(
            "orders",
            8,
            [[names[i % 4]] for i in range(8)],
            partition_column="qty",
        )
        fragments = engine.catalog.entry("orders").fragments
        assert len(fragments) == 8
        assert all(f.zone_map is not None for f in fragments)
        assert fragments[0].zone_map.columns["qty"].maximum == 19


class TestFragmentCanMatch:
    """Unit soundness: False only on provable emptiness."""

    zone = ZoneMap(
        row_count=10,
        columns={"qty": ColumnStats(minimum=10, maximum=19, null_count=0, distinct=10)},
    )

    def test_missing_zone_map_never_prunes(self):
        assert fragment_can_match(None, [Predicate("qty", ">", 10**6)])

    def test_empty_fragment_always_prunes(self):
        assert not fragment_can_match(ZoneMap(row_count=0), [])

    def test_range_outside_interval_prunes(self):
        assert not fragment_can_match(self.zone, [Predicate("qty", ">", 19)])
        assert not fragment_can_match(self.zone, [Predicate("qty", "<", 10)])
        assert not fragment_can_match(self.zone, [Predicate("qty", ">=", 20)])

    def test_range_touching_interval_keeps(self):
        assert fragment_can_match(self.zone, [Predicate("qty", ">=", 19)])
        assert fragment_can_match(self.zone, [Predicate("qty", "<=", 10)])

    def test_equality_outside_interval_prunes(self):
        assert not fragment_can_match(self.zone, [Predicate("qty", "=", 42)])
        assert fragment_can_match(self.zone, [Predicate("qty", "=", 15)])

    def test_equality_null_needs_nulls(self):
        assert not fragment_can_match(self.zone, [Predicate("qty", "=", None)])
        with_nulls = ZoneMap(
            row_count=3,
            columns={"qty": ColumnStats(minimum=1, maximum=2, null_count=1, distinct=2)},
        )
        assert fragment_can_match(with_nulls, [Predicate("qty", "=", None)])

    def test_range_on_all_null_column_prunes(self):
        all_null = ZoneMap(
            row_count=4, columns={"qty": ColumnStats(null_count=4, distinct=0)}
        )
        # None fails every range comparison, so no row can pass.
        assert not fragment_can_match(all_null, [Predicate("qty", ">", 0)])
        # ... but None != v is True, so inequality keeps the fragment.
        assert fragment_can_match(all_null, [Predicate("qty", "!=", 0)])

    def test_not_equal_single_valued_fragment_prunes(self):
        constant = ZoneMap(
            row_count=5,
            columns={"qty": ColumnStats(minimum=7, maximum=7, null_count=0, distinct=1)},
        )
        assert not fragment_can_match(constant, [Predicate("qty", "!=", 7)])
        assert fragment_can_match(constant, [Predicate("qty", "!=", 8)])

    def test_unanalyzed_column_keeps(self):
        assert fragment_can_match(self.zone, [Predicate("other", ">", 10**6)])

    def test_incomparable_value_keeps(self):
        assert fragment_can_match(self.zone, [Predicate("qty", ">", "high")])


class TestSelectivity:
    def test_fallback_matches_seed_constants(self):
        assert fallback_selectivity([Predicate("a", "=", 1)]) == pytest.approx(0.1)
        assert fallback_selectivity([Predicate("a", ">", 1)]) == pytest.approx(0.3)
        assert fallback_selectivity(
            [Predicate("a", "=", 1)] * 5
        ) == pytest.approx(0.01)

    def test_zone_equality_uses_distinct(self):
        zone = ZoneMap(
            row_count=100,
            columns={"a": ColumnStats(minimum=0, maximum=99, null_count=0, distinct=50)},
        )
        assert zone_selectivity(zone, [Predicate("a", "=", 10)]) == pytest.approx(
            1 / 50
        )

    def test_zone_range_interpolates(self):
        zone = ZoneMap(
            row_count=100,
            columns={"a": ColumnStats(minimum=0, maximum=100, null_count=0, distinct=100)},
        )
        assert zone_selectivity(zone, [Predicate("a", "<", 25)]) == pytest.approx(
            0.25
        )
        assert zone_selectivity(zone, [Predicate("a", ">", 25)]) == pytest.approx(
            0.75
        )

    def test_unsatisfiable_is_zero(self):
        zone = ZoneMap(
            row_count=100,
            columns={"a": ColumnStats(minimum=0, maximum=10, null_count=0, distinct=10)},
        )
        assert zone_selectivity(zone, [Predicate("a", ">", 10)]) == 0.0

    def test_fragment_selectivity_falls_back_without_stats(self):
        class Bare:
            zone_map = None

        assert fragment_selectivity(Bare(), [Predicate("a", "=", 1)]) == (
            pytest.approx(0.1)
        )


@pytest.mark.parametrize(
    "optimizer",
    [
        AgoricOptimizer,
        CentralizedOptimizer,
        lambda catalog: PolicyOptimizer(catalog, RoundRobinPolicy()),
    ],
    ids=["agoric", "centralized", "policy"],
)
class TestPruningEndToEnd:
    SQL = "select id, qty from orders where qty >= 140 and qty < 150"

    def test_prunes_strictly_fewer_sites_and_rows_same_answer(self, optimizer):
        pruned = build_engine(optimizer=optimizer)
        seed = strip_zone_maps(build_engine(optimizer=optimizer))
        a = pruned.query(self.SQL, advance_clock=False)
        b = seed.query(self.SQL, advance_clock=False)
        assert answers(a) == answers(b) and len(a.table) == 10
        # Strictly fewer rows cross the network (sites still filter locally,
        # so rows_fetched -- the post-pushdown match count -- stays equal).
        assert a.report.rows_shipped < b.report.rows_shipped
        assert a.report.rows_fetched == b.report.rows_fetched == 10
        assert len(a.report.site_work) < len(b.report.site_work)
        assert a.report.fragments_pruned == 15
        assert a.report.fragments_total == 16
        assert b.report.fragments_pruned == 0

    def test_fully_pruned_scan_returns_empty(self, optimizer):
        engine = build_engine(optimizer=optimizer)
        result = engine.query(
            "select id from orders where qty > 100000", advance_clock=False
        )
        assert len(result.table) == 0
        assert result.report.fragments_pruned == 16
        # No site did any scan work (the coordinator still shows up with a
        # zero-seconds entry for the plumbing operators).
        assert not any(result.report.site_work.values())

    def test_stale_stats_disable_pruning_soundly(self, optimizer):
        engine = build_engine(optimizer=optimizer)
        engine.catalog.notify_table_updated("orders")
        result = engine.query(self.SQL, advance_clock=False)
        # No statistics -> no pruning, but the answer is intact.
        assert result.report.fragments_pruned == 0
        assert len(result.table) == 10

    def test_pruning_counters_in_metrics(self, optimizer):
        engine = build_engine(optimizer=optimizer)
        engine.query(self.SQL, advance_clock=False)
        assert engine.metrics.counter("pruning.fragments_pruned").value == 15
        assert engine.metrics.counter("pruning.fragments_total").value == 16


class TestAgoricPruningEconomics:
    def test_pruned_fragments_solicit_no_bids(self):
        pruned = build_engine(optimizer=AgoricOptimizer)
        seed = strip_zone_maps(build_engine(optimizer=AgoricOptimizer))
        sql = "select id from orders where qty < 10"
        a = pruned.query(sql, advance_clock=False)
        b = seed.query(sql, advance_clock=False)
        assert a.plan.sites_contacted < b.plan.sites_contacted
        assert a.plan.optimization_seconds < b.plan.optimization_seconds

    def test_zone_selectivity_lowers_quotes(self):
        engine = build_engine(optimizer=AgoricOptimizer)
        narrow = engine.query(
            "select id from orders where qty >= 140 and qty < 145",
            advance_clock=False,
        )
        full = engine.query("select id from orders", advance_clock=False)
        assert narrow.plan.total_price < full.plan.total_price


class TestExplainSurfacesPruning:
    def test_explain_shows_pruned_counts(self):
        engine = build_engine()
        text = engine.explain("select id from orders where qty < 10")
        assert "pruned 15/16" in text

    def test_explain_analyze_shows_pruned_fragments(self):
        engine = build_engine()
        text = engine.explain(
            "select id from orders where qty < 10", analyze=True
        )
        assert "pruned fragments 15/16" in text

    def test_explain_without_predicates_shows_no_pruning(self):
        engine = build_engine()
        text = engine.explain("select id from orders")
        assert "pruned" not in text


class TestCentralizedSharedEstimator:
    def test_makespan_uses_selectivity_not_full_table(self):
        engine = build_engine(fragment_count=4, optimizer=CentralizedOptimizer)
        optimizer = engine.optimizer
        catalog = engine.catalog
        entry = catalog.entry("orders")
        fragment = entry.fragments[0]
        live = [s for s in fragment.replica_sites() if catalog.site(s).up]
        full = optimizer._estimate_makespan(
            [(None, fragment, live, 1.0)], (live[0],)
        )
        selective = optimizer._estimate_makespan(
            [(None, fragment, live, 0.05)], (live[0],)
        )
        assert selective < full


class TestViewLivenessGuards:
    def _engine_with_view(self, optimizer=None):
        engine = build_engine(
            fragment_count=4, site_count=4, optimizer=optimizer
        )
        engine.create_materialized_view("orders_v", "orders", "s2")
        return engine

    @pytest.mark.parametrize(
        "optimizer",
        [
            None,
            CentralizedOptimizer,
            lambda catalog: PolicyOptimizer(catalog, RoundRobinPolicy()),
        ],
        ids=["agoric", "centralized", "policy"],
    )
    def test_view_by_name_with_down_host_raises_cleanly(self, optimizer):
        engine = self._engine_with_view(optimizer)
        engine.catalog.site("s2").up = False
        with pytest.raises(QueryError, match="down"):
            engine.query("select id from orders_v", advance_clock=False)

    @pytest.mark.parametrize(
        "optimizer",
        [
            None,
            CentralizedOptimizer,
            lambda catalog: PolicyOptimizer(catalog, RoundRobinPolicy()),
        ],
        ids=["agoric", "centralized", "policy"],
    )
    def test_coordinator_prefers_view_host(self, optimizer):
        engine = self._engine_with_view(optimizer)
        result = engine.query("select id from orders_v", advance_clock=False)
        assert result.plan.assignments["orders_v"].kind == "view"
        # The rows already live on s2; the coordinator must not fall back
        # to the alphabetically-first up site (s0).
        assert result.plan.coordinator == "s2"

    def test_base_table_fails_over_when_view_host_down(self):
        engine = self._engine_with_view()
        engine.catalog.site("s2").up = False
        # Querying the *base table* is still served (from fragments).
        result = engine.query("select id from orders", advance_clock=False)
        assert len(result.table) == 160


class TestDeterminism:
    def test_modeled_seconds_exclude_wall_clock(self):
        engine = build_engine(optimizer=AgoricOptimizer)
        result = engine.query(
            "select id from orders where qty < 10", advance_clock=False
        )
        plan = result.plan
        opt = engine.optimizer
        expected = (
            opt.bid_round_trip_seconds
            + plan.sites_contacted * opt.per_bid_seconds
        )
        assert plan.optimization_seconds == pytest.approx(expected)
        assert plan.planner_wall_seconds > 0.0
        assert result.report.planner_wall_seconds == plan.planner_wall_seconds

    @pytest.mark.parametrize(
        "optimizer",
        [AgoricOptimizer, CentralizedOptimizer],
        ids=["agoric", "centralized"],
    )
    def test_two_identical_runs_report_identical_seconds(self, optimizer):
        sql = "select id, qty from orders where qty >= 40 and qty < 60"

        def run():
            engine = build_engine(optimizer=optimizer)
            result = engine.query(sql)
            return (
                result.report.response_seconds,
                engine.catalog.clock.now(),
                answers(result),
            )

        assert run() == run()


class TestPrunedUnprunedEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=10**6),
                st.one_of(
                    st.none(), st.integers(min_value=-100, max_value=100)
                ),
                st.sampled_from(["a", "b", "c"]),
            ),
            min_size=0,
            max_size=60,
        ),
        st.sampled_from(["<", "<=", ">", ">=", "=", "!="]),
        st.integers(min_value=-120, max_value=120),
    )
    def test_random_range_predicates_match_seed(self, rows, op, value):
        sql = f"select id, qty, tag from orders where qty {op} {value}"
        pruned = build_engine(rows=rows, fragment_count=8, site_count=4)
        seed = strip_zone_maps(
            build_engine(rows=rows, fragment_count=8, site_count=4)
        )
        assert answers(pruned.query(sql, advance_clock=False)) == answers(
            seed.query(sql, advance_clock=False)
        )

"""Tests for the ETL + warehouse baseline."""

import pytest

from repro.connect.source import LiveSource, StaticSource
from repro.core import DataType, Field, Schema, Table
from repro.core.errors import QueryError, TransformError
from repro.sim import EventLoop, SimClock
from repro.warehouse import EtlJob, Warehouse


def schema():
    return Schema(
        "inventory",
        (Field("sku", DataType.STRING), Field("qty", DataType.INTEGER)),
    )


def make_live_source(state):
    return LiveSource(
        "erp-feed", schema(), lambda: list(state), cost_seconds=0.5
    )


class TestEtlJob:
    def test_run_extracts_and_transforms(self):
        source = StaticSource("src", Table(schema(), [("A", 1), ("B", 2)]))

        def double(table):
            out = Table(table.schema, validate=False)
            out.rows = [(sku, qty * 2) for sku, qty in table.rows]
            return out

        job = EtlJob("inv", source, transform=double)
        run = job.run(now=0.0)
        assert run.rows_in == 2
        assert run.table.column("qty") == [2, 4]
        assert run.table.schema.name == "inv"

    def test_bad_transform_rejected(self):
        source = StaticSource("src", Table(schema(), [("A", 1)]))
        job = EtlJob("inv", source, transform=lambda t: "oops")
        with pytest.raises(TransformError):
            job.run(0.0)

    def test_etl_run_has_no_lineage(self):
        source = StaticSource("src", Table(schema(), [("A", 1)]))
        run = EtlJob("inv", source).run(0.0)
        with pytest.raises(LookupError):
            run.origin_of(0)

    def test_extract_cost_accumulates(self):
        state = [{"sku": "A", "qty": 1}]
        job = EtlJob("inv", make_live_source(state))
        job.run(0.0)
        job.run(1.0)
        assert job.total_extract_seconds == pytest.approx(1.0)


class TestWarehouse:
    def make(self):
        clock = SimClock()
        state = [{"sku": "A", "qty": 10}, {"sku": "B", "qty": 0}]
        warehouse = Warehouse(clock)
        warehouse.add_job(EtlJob("inventory", make_live_source(state)))
        return clock, state, warehouse

    def test_refresh_loads_snapshot(self):
        _, _, warehouse = self.make()
        cost = warehouse.refresh()
        assert cost == pytest.approx(0.5)
        result = warehouse.query("select * from inventory")
        assert len(result.table) == 2

    def test_query_before_load_fails(self):
        _, _, warehouse = self.make()
        with pytest.raises(QueryError):
            warehouse.query("select * from inventory")

    def test_snapshot_does_not_see_updates(self):
        clock, state, warehouse = self.make()
        warehouse.refresh()
        state[1]["qty"] = 99  # operational update after the batch
        result = warehouse.query("select qty from inventory where sku = 'B'")
        assert result.table.column("qty") == [0]  # stale answer
        warehouse.refresh()
        result = warehouse.query("select qty from inventory where sku = 'B'")
        assert result.table.column("qty") == [99]

    def test_staleness_reported(self):
        clock, _, warehouse = self.make()
        warehouse.refresh()
        clock.advance(120.0)
        result = warehouse.query("select * from inventory")
        assert result.report.staleness_seconds == pytest.approx(120.0, abs=1.0)

    def test_scheduled_refresh(self):
        clock, state, warehouse = self.make()
        loop = EventLoop(clock)
        warehouse.refresh()
        warehouse.schedule_refresh(loop, interval=60.0)
        loop.run_until(250.0)
        assert warehouse.refresh_count == 1 + 4
        assert warehouse.refresh_seconds_total == pytest.approx(0.5 * 5)

    def test_bad_interval_rejected(self):
        _, _, warehouse = self.make()
        with pytest.raises(QueryError):
            warehouse.schedule_refresh(EventLoop(warehouse.clock), 0)

    def test_duplicate_target_rejected(self):
        _, state, warehouse = self.make()
        with pytest.raises(QueryError):
            warehouse.add_job(EtlJob("inventory", make_live_source(state)))

    def test_refresh_cost_scales_with_source_count(self):
        clock = SimClock()
        warehouse = Warehouse(clock)
        for i in range(4):
            warehouse.add_job(
                EtlJob(f"t{i}", make_live_source([{"sku": "A", "qty": 1}]))
            )
        assert warehouse.refresh() == pytest.approx(2.0)  # 4 sources x 0.5s

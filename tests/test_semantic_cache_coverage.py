"""Unit tests for implication-aware coverage and cost-aware cache policy."""

import pytest

from repro.connect.source import Predicate
from repro.core import DataType, Field, Schema, Table
from repro.federation.cache import (
    SemanticCache,
    coverage_kind,
    region_covers,
)
from repro.sim import SimClock
from repro.sim.metrics import MetricsRegistry


def P(column, op, value):
    return Predicate(column, op, value)


def region(*predicates):
    return frozenset(predicates)


class TestCoverageKind:
    def test_verbatim_subset_still_covers(self):
        assert coverage_kind(
            region(P("a", ">", 5)), region(P("a", ">", 5), P("b", "=", 1))
        ) == "verbatim"

    def test_empty_region_covers_everything_verbatim(self):
        assert coverage_kind(region(), region(P("a", "<", 3))) == "verbatim"

    def test_upper_bound_subsumption(self):
        # price < 5 covers price < 3 (the paper-shaped example).
        assert coverage_kind(
            region(P("price", "<", 5)), region(P("price", "<", 3))
        ) == "implication"
        assert coverage_kind(
            region(P("price", "<", 5)), region(P("price", "<=", 4))
        ) == "implication"
        # Strict implies non-strict at the same bound, not vice versa.
        assert coverage_kind(
            region(P("price", "<=", 5)), region(P("price", "<", 5))
        ) == "implication"
        assert coverage_kind(
            region(P("price", "<", 5)), region(P("price", "<=", 5))
        ) is None

    def test_lower_bound_subsumption(self):
        assert coverage_kind(
            region(P("price", ">", 2)), region(P("price", ">", 4))
        ) == "implication"
        assert coverage_kind(
            region(P("price", ">=", 2)), region(P("price", ">", 2))
        ) == "implication"
        assert coverage_kind(
            region(P("price", ">", 4)), region(P("price", ">", 2))
        ) is None

    def test_wider_request_misses(self):
        assert coverage_kind(
            region(P("price", "<", 3)), region(P("price", "<", 5))
        ) is None

    def test_equality_implies_satisfied_constraints(self):
        # supplier = 'acme' implies supplier != 'bolt'.
        assert coverage_kind(
            region(P("supplier", "!=", "bolt")),
            region(P("supplier", "=", "acme")),
        ) == "implication"
        # ...but not the forbidden value itself.
        assert coverage_kind(
            region(P("supplier", "!=", "bolt")),
            region(P("supplier", "=", "bolt")),
        ) is None
        assert coverage_kind(
            region(P("price", "<", 10)), region(P("price", "=", 7))
        ) == "implication"
        assert coverage_kind(
            region(P("price", "<", 10)), region(P("price", "=", 12))
        ) is None

    def test_equality_with_null_never_implies(self):
        # NULL rows satisfy `col = None` but fail every range predicate.
        assert coverage_kind(
            region(P("price", "<", 10)), region(P("price", "=", None))
        ) is None

    def test_bound_excluding_value_implies_not_equal(self):
        assert coverage_kind(
            region(P("price", "!=", 9)), region(P("price", "<", 5))
        ) == "implication"
        assert coverage_kind(
            region(P("price", "!=", 3)), region(P("price", "<", 5))
        ) is None  # 3 is inside the requested range

    def test_contains_substring_subsumption(self):
        assert coverage_kind(
            region(P("name", "contains", "ota")),
            region(P("name", "contains", "rotary")),
        ) == "implication"
        assert coverage_kind(
            region(P("name", "contains", "rotary")),
            region(P("name", "contains", "ota")),
        ) is None

    def test_equality_implies_contains_only_for_strings(self):
        assert coverage_kind(
            region(P("name", "contains", "acm")),
            region(P("name", "=", "acme")),
        ) == "implication"
        # str(1.0) vs str(1) diverge; numeric equality must not leak into
        # substring reasoning.
        assert coverage_kind(
            region(P("code", "contains", "1.0")),
            region(P("code", "=", 1)),
        ) is None

    def test_mixed_types_are_a_miss_not_an_error(self):
        assert coverage_kind(
            region(P("price", "<", 5)), region(P("price", "<", "3"))
        ) is None

    def test_different_columns_never_imply(self):
        assert coverage_kind(
            region(P("a", "<", 5)), region(P("b", "<", 3))
        ) is None

    def test_region_covers_verbatim_mode(self):
        cached, requested = region(P("a", "<", 5)), region(P("a", "<", 3))
        assert region_covers(cached, requested)
        assert not region_covers(cached, requested, implication=False)
        assert region_covers(cached, cached, implication=False)


def make_table(n=10):
    schema = Schema("t", (Field("a", DataType.INTEGER),))
    return Table(schema, [(i,) for i in range(n)])


class TestImplicationLookup:
    def test_residuals_applied_on_implication_hit(self):
        cache = SemanticCache(SimClock())
        cache.store("t", [P("a", "<", 8)], make_table(8))
        result = cache.lookup("t", [P("a", "<", 5), P("a", ">", 1)])
        assert result is not None
        assert sorted(result.column("a")) == [2, 3, 4]
        assert cache.implication_hits == 1 and cache.verbatim_hits == 0

    def test_verbatim_mode_rejects_implication(self):
        cache = SemanticCache(SimClock(), coverage="verbatim")
        cache.store("t", [P("a", "<", 8)], make_table(8))
        assert cache.lookup("t", [P("a", "<", 5)]) is None
        assert cache.lookup("t", [P("a", "<", 8)]) is not None

    def test_unknown_coverage_policy_rejected(self):
        with pytest.raises(ValueError):
            SemanticCache(SimClock(), coverage="psychic")


class TestAdmissionAndEviction:
    def test_oversized_entry_refused_not_pinned(self):
        # Regression: the old evictor's len>1 guard pinned a single entry
        # larger than max_rows in memory forever.
        cache = SemanticCache(SimClock(), max_rows=50)
        assert cache.store("t", [], make_table(60)) is False
        assert len(cache) == 0 and cache.cached_rows() == 0
        assert cache.rejected == 1
        assert cache.lookup("t", []) is None

    def test_low_benefit_entry_evicted_first(self):
        clock = SimClock()
        cache = SemanticCache(clock, max_rows=100)
        cache.store("t", [P("a", "=", 1)], make_table(60), fetch_seconds=0.001)
        clock.advance(1.0)
        cache.store("t", [P("a", "=", 2)], make_table(60), fetch_seconds=5.0)
        # LRU would evict the older entry; benefit keeps the expensive one.
        assert len(cache) == 1
        assert cache.lookup("t", [P("a", "=", 2), P("a", "!=", 0)]) is not None

    def test_worthless_new_entry_not_admitted(self):
        clock = SimClock()
        cache = SemanticCache(clock, max_rows=100)
        assert cache.store("t", [P("a", "=", 1)], make_table(90), fetch_seconds=5.0)
        admitted = cache.store("t", [P("a", "=", 2)], make_table(90), fetch_seconds=0.0)
        assert admitted is False
        assert cache.lookup("t", [P("a", "=", 1)]) is not None

    def test_store_stamps_explicit_fetch_time(self):
        clock = SimClock()
        cache = SemanticCache(clock)
        clock.advance(10.0)
        cache.store("t", [], make_table(), as_of=4.0)
        _, age = cache.lookup_entry("t", [])
        assert age == pytest.approx(6.0)
        assert cache.entry_ages() == [pytest.approx(6.0)]

    def test_per_call_staleness_bound_overrides_store_default(self):
        """Regression: a caller with a *looser* per-query staleness bound
        than the store default must still be served.

        Pre-fix, ``_find`` first applied the store default and evicted the
        entry before the per-call bound was ever consulted, so a query
        happy with 100s-old rows missed (and destroyed) an entry that was
        only 10s old under a 5s store default.
        """
        clock = SimClock()
        cache = SemanticCache(clock, max_staleness=5.0)
        cache.store("t", [], make_table(), as_of=0.0)
        clock.advance(10.0)
        found = cache.lookup_entry("t", [], max_staleness=100.0)
        assert found is not None
        _, age = found
        assert age == pytest.approx(10.0)
        assert cache.hits == 1 and cache.evictions == 0

    def test_store_default_still_applies_when_call_passes_none(self):
        clock = SimClock()
        cache = SemanticCache(clock, max_staleness=5.0)
        cache.store("t", [], make_table(), as_of=0.0)
        clock.advance(10.0)
        assert cache.lookup_entry("t", []) is None
        # Dead by the store's own TTL *and* unserveable here: reclaimed.
        assert cache.evictions == 1 and len(cache) == 0

    def test_tighter_per_call_bound_skips_but_keeps_fresh_entry(self):
        clock = SimClock()
        cache = SemanticCache(clock, max_staleness=100.0)
        cache.store("t", [], make_table(), as_of=0.0)
        clock.advance(10.0)
        # Too stale for this strict caller, but alive by the store TTL:
        # the entry stays for laxer queries.
        assert cache.lookup_entry("t", [], max_staleness=1.0) is None
        assert cache.evictions == 0 and len(cache) == 1
        assert cache.lookup_entry("t", [], max_staleness=50.0) is not None

    def test_metrics_registry_sees_cache_traffic(self):
        clock = SimClock()
        metrics = MetricsRegistry()
        cache = SemanticCache(clock, max_rows=50, metrics=metrics)
        cache.store("t", [P("a", "<", 9)], make_table(9))
        cache.lookup("t", [P("a", "<", 3)])
        cache.lookup("t", [P("a", ">", 3)])
        cache.store("t", [], make_table(60))  # rejected: oversized
        cache.invalidate_table("t")
        assert metrics.counter("cache.hits").value == 1
        assert metrics.counter("cache.misses").value == 1
        assert metrics.counter("cache.implication_hits").value == 1
        assert metrics.counter("cache.rejected").value == 1
        assert metrics.counter("cache.invalidations").value == 1
        assert metrics.histogram("cache.entry_age_seconds").count == 1

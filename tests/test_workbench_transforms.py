"""Tests for the transform pipeline and lineage tracking."""

import pytest

from repro.core import DataType, Field, Money, Schema, Table, TransformError
from repro.workbench import (
    AddColumn,
    CastColumn,
    DropColumns,
    FilterRows,
    MapColumn,
    MergeColumns,
    Pipeline,
    ProjectColumns,
    RenameColumns,
    ScriptStep,
    SplitColumn,
)
from repro.workbench.normalize import parse_price


def raw_schema():
    return Schema(
        "acme_raw",
        (
            Field("sku", DataType.STRING),
            Field("item", DataType.STRING),
            Field("price_raw", DataType.STRING),
            Field("qty_raw", DataType.STRING),
        ),
    )


def raw_table():
    return Table(
        raw_schema(),
        [
            ("A-1", "black ink", "$5.00", "10"),
            ("A-2", "blue ink", "5,50 FRF", "0"),
            ("A-3", "hex bolt", "$1.25", "40"),
        ],
    )


class TestIndividualSteps:
    def test_rename(self):
        result = Pipeline("p", [RenameColumns({"item": "part_name"})]).run(raw_table())
        assert result.table.schema.has_field("part_name")
        assert result.lineage.explain("part_name")[0] == "source acme_raw(item)"

    def test_rename_missing_column_fails(self):
        with pytest.raises(Exception):
            Pipeline("p", [RenameColumns({"ghost": "x"})]).run(raw_table())

    def test_project_and_drop(self):
        result = Pipeline("p", [ProjectColumns(["sku", "item"])]).run(raw_table())
        assert result.table.schema.field_names == ("sku", "item")
        result2 = Pipeline("p", [DropColumns(["qty_raw"])]).run(raw_table())
        assert not result2.table.schema.has_field("qty_raw")

    def test_cast_to_integer(self):
        result = Pipeline("p", [CastColumn("qty_raw", DataType.INTEGER)]).run(raw_table())
        assert result.table.column("qty_raw") == [10, 0, 40]
        assert result.table.schema.field_named("qty_raw").dtype is DataType.INTEGER

    def test_cast_failure_carries_value(self):
        bad = Table(raw_schema(), [("A", "x", "p", "not-a-number")])
        with pytest.raises(TransformError) as excinfo:
            Pipeline("p", [CastColumn("qty_raw", DataType.INTEGER)]).run(bad)
        assert "not-a-number" in str(excinfo.value)

    def test_cast_custom_converter(self):
        result = Pipeline(
            "p", [CastColumn("price_raw", DataType.MONEY, converter=parse_price)]
        ).run(raw_table())
        assert result.table.column("price_raw")[0] == Money(5.0, "USD")

    def test_cast_none_passes_through(self):
        table = Table(raw_schema(), [("A", "x", None, "1")])
        result = Pipeline("p", [CastColumn("price_raw", DataType.FLOAT)]).run(table)
        assert result.table.column("price_raw") == [None]

    def test_map_column(self):
        result = Pipeline(
            "p", [MapColumn("item", str.upper, description="uppercase(item)")]
        ).run(raw_table())
        assert result.table.column("item")[0] == "BLACK INK"
        assert "uppercase(item)" in result.lineage.explain("item")

    def test_add_column(self):
        step = AddColumn(
            "label", DataType.STRING,
            fn=lambda row: f"{row['sku']}:{row['item']}",
            inputs=("sku", "item"),
        )
        result = Pipeline("p", [step]).run(raw_table())
        assert result.table.column("label")[0] == "A-1:black ink"
        assert set(result.lineage.source_columns_of("label")) == {"sku", "item"}

    def test_split_column(self):
        result = Pipeline("p", [SplitColumn("sku", ["family", "number"], "-")]).run(raw_table())
        assert result.table.column("family") == ["A", "A", "A"]
        assert result.table.column("number") == ["1", "2", "3"]
        assert not result.table.schema.has_field("sku")
        assert result.lineage.source_columns_of("family") == ("sku",)

    def test_split_pads_missing_parts(self):
        table = Table(raw_schema(), [("NODASH", "x", "1", "1")])
        result = Pipeline("p", [SplitColumn("sku", ["a", "b"], "-")]).run(table)
        assert result.table.column("b") == [None]

    def test_merge_columns(self):
        result = Pipeline(
            "p", [MergeColumns(["sku", "item"], "title", joiner=" | ")]
        ).run(raw_table())
        assert result.table.column("title")[0] == "A-1 | black ink"
        assert set(result.lineage.source_columns_of("title")) == {"sku", "item"}

    def test_filter_rows_updates_row_origins(self):
        result = Pipeline(
            "p", [FilterRows(lambda row: row["qty_raw"] != "0", "drop out-of-stock")]
        ).run(raw_table())
        assert len(result.table) == 2
        assert result.lineage.origin_of(1).row_index == 2  # A-3 was source row 2


class TestScriptStep:
    def test_row_preserving_script_keeps_lineage(self):
        def shout(table):
            index = table.schema.index_of("item")
            out = Table(table.schema, validate=False)
            out.rows = [r[:index] + (r[index].upper(),) + r[index + 1:] for r in table.rows]
            return out

        result = Pipeline("p", [ScriptStep(shout, "shout")]).run(raw_table())
        assert not result.lineage.broken
        assert result.lineage.origin_of(0).row_index == 0

    def test_row_changing_script_breaks_lineage(self):
        def dedupe(table):
            out = Table(table.schema, validate=False)
            out.rows = table.rows[:1]
            return out

        result = Pipeline("p", [ScriptStep(dedupe, "dedupe")]).run(raw_table())
        assert result.lineage.broken
        with pytest.raises(LookupError):
            result.lineage.origin_of(0)

    def test_script_must_return_table(self):
        with pytest.raises(TransformError):
            Pipeline("p", [ScriptStep(lambda t: None, "bad")]).run(raw_table())


class TestFullPipeline:
    def make_pipeline(self):
        return Pipeline(
            "acme-normalize",
            [
                RenameColumns({"item": "part_name"}),
                CastColumn("qty_raw", DataType.INTEGER),
                RenameColumns({"qty_raw": "qty"}),
                CastColumn("price_raw", DataType.MONEY, converter=parse_price),
                RenameColumns({"price_raw": "price"}),
                FilterRows(lambda row: row["qty"] > 0, "in-stock only"),
            ],
        )

    def test_end_to_end(self):
        result = self.make_pipeline().run(raw_table(), source_name="acme")
        assert result.table.schema.field_names == ("sku", "part_name", "price", "qty")
        assert len(result.table) == 2

    def test_lineage_explains_full_chain(self):
        result = self.make_pipeline().run(raw_table(), source_name="acme")
        chain = result.lineage.explain("price")
        assert chain[0] == "source acme(price_raw)"
        assert any("cast" in step for step in chain)
        assert any("in-stock" in step for step in chain)

    def test_row_provenance_after_filter(self):
        result = self.make_pipeline().run(raw_table(), source_name="acme")
        origins = [result.lineage.origin_of(i) for i in range(len(result.table))]
        assert [o.row_index for o in origins] == [0, 2]
        assert all(o.source == "acme" for o in origins)

    def test_describe_lists_steps(self):
        descriptions = self.make_pipeline().describe()
        assert len(descriptions) == 6
        assert descriptions[0].startswith("rename")

    def test_unknown_lineage_column_raises(self):
        result = self.make_pipeline().run(raw_table())
        with pytest.raises(LookupError):
            result.lineage.explain("ghost")

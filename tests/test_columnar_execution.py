"""Columnar engine equivalence and wire-encoding round-trips.

The vectorized data plane (``repro.federation.columnar``) replaces the
row-at-a-time operator loops but must be *observably identical*: every
query answers row-for-row (and bit-for-bit, ordering included) what the
legacy row engine answers, and every column encoding must decode to
exactly the values that went in -- types, NULLs and float signs included.
These tests state both contracts as hypothesis properties and pin the
Ship-accounting rules (cache-served, pruned and coordinator-local scans
never count as shipped) with deterministic regressions.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DataType, Field, Schema, Table
from repro.federation import FederatedEngine, FederationCatalog, SemanticCache
from repro.federation.columnar import (
    decode_batch,
    decode_column,
    encode_batch,
    encode_column,
    table_chunks,
)
from repro.sim import SimClock


def build_pair(rows, fragment_count=3, site_count=4, cache=False):
    """Two engines over *identical* catalogs: columnar on vs off."""
    engines = []
    for columnar in (True, False):
        clock = SimClock()
        catalog = FederationCatalog(clock)
        names = [catalog.make_site(f"s{i}").name for i in range(site_count)]
        schema = Schema(
            "t",
            (
                Field("k", DataType.INTEGER),
                Field("v", DataType.INTEGER),
                Field("tag", DataType.STRING),
                Field("price", DataType.FLOAT),
            ),
        )
        table = Table(schema, rows, validate=False)
        placement = [
            [names[i % site_count], names[(i + 1) % site_count]]
            for i in range(fragment_count)
        ]
        catalog.load_fragmented(table, fragment_count, placement)
        engines.append(
            FederatedEngine(
                catalog,
                cache=SemanticCache(clock) if cache else None,
                columnar=columnar,
            )
        )
    return engines


def build_join_pair(t_rows, u_rows, fragment_count=2):
    engines = []
    for columnar in (True, False):
        clock = SimClock()
        catalog = FederationCatalog(clock)
        names = [catalog.make_site(f"s{i}").name for i in range(4)]
        t_schema = Schema(
            "t",
            (
                Field("k", DataType.INTEGER),
                Field("v", DataType.INTEGER),
                Field("tag", DataType.STRING),
            ),
        )
        u_schema = Schema(
            "u", (Field("k", DataType.INTEGER), Field("w", DataType.INTEGER))
        )
        placement = [
            [names[i % 4], names[(i + 1) % 4]] for i in range(fragment_count)
        ]
        catalog.load_fragmented(
            Table(t_schema, t_rows, validate=False), fragment_count, placement
        )
        catalog.load_fragmented(
            Table(u_schema, u_rows, validate=False), fragment_count, placement
        )
        engines.append(FederatedEngine(catalog, columnar=columnar))
    return engines


def exact_rows(result):
    """Ordered, type-tagged row images: catches bool/int and 0.0/-0.0."""
    return [
        tuple((type(v).__name__, repr(v)) for v in row)
        for row in result.table.rows
    ]


rows_strategy = st.lists(
    st.tuples(
        st.integers(min_value=-20, max_value=20),
        st.one_of(st.none(), st.integers(min_value=-50, max_value=50)),
        st.one_of(st.none(), st.sampled_from(["alpha", "alto", "beta", "b"])),
        st.one_of(
            st.none(),
            st.floats(min_value=-100, max_value=100, allow_nan=False),
        ),
    ),
    min_size=0,
    max_size=60,
)

filter_query_strategy = st.sampled_from(
    [
        "select k, v from t where v > 0",
        "select k, v, tag, price from t where v >= 10 and k < 5",
        "select k from t where tag = 'alpha' or v < -10",
        "select k, tag from t where not (v > 0)",
        "select k from t where tag != 'beta' and price <= 50",
        "select k, v from t where k in (0, 3, -7)",
        "select k from t where tag not in ('alpha', 'b')",
        "select k, v from t where v between -5 and 5",
        "select k, tag from t where tag like 'al%'",
        "select k from t where tag not like '%a' order by k limit 9",
        "select k, price from t where price > 1.5 or price < -1.5",
        "select k from t where v = k",
        "select k, v from t where v != k order by k, v limit 12",
    ]
)

aggregate_query_strategy = st.sampled_from(
    [
        "select tag, count(*) as n from t group by tag order by tag",
        "select tag, count(v) as n, sum(v) as s from t group by tag order by tag",
        "select count(*) as n, max(v) as m, min(price) as lo from t",
        "select tag, avg(price) as a from t where k >= 0 group by tag order by tag",
        "select min(tag) as lo, max(tag) as hi from t where v > -10",
        "select avg(v) as a, sum(price) as s from t where tag like 'a%'",
    ]
)

join_rows_strategy = st.lists(
    st.tuples(
        st.integers(min_value=-8, max_value=8),
        st.one_of(st.none(), st.integers(min_value=-30, max_value=30)),
        st.sampled_from(["a", "b", "c"]),
    ),
    min_size=0,
    max_size=40,
)

u_rows_strategy = st.lists(
    st.tuples(
        st.integers(min_value=-8, max_value=8),
        st.one_of(st.none(), st.integers(min_value=-20, max_value=20)),
    ),
    min_size=0,
    max_size=25,
)

join_query_strategy = st.sampled_from(
    [
        "select t.k, u.w from t join u on t.k = u.k",
        "select t.k, t.v, u.w from t join u on t.k = u.k "
        "where t.v > 0 and u.w < 20",
        "select t.k, u.w from t left join u on t.k = u.k where t.tag = 'a'",
        "select t.tag, count(u.w) as n from t left join u on t.k = u.k "
        "group by t.tag order by t.tag",
        "select t.k from t join u on t.k = u.k where t.v > 0 or u.w > 0",
    ]
)


class TestEngineEquivalence:
    """columnar=True vs columnar=False: bit-identical answers, in order."""

    @settings(max_examples=40, deadline=None)
    @given(rows_strategy, filter_query_strategy)
    def test_filters_identical(self, rows, sql):
        vec, row = build_pair(rows)
        assert exact_rows(vec.query(sql, advance_clock=False)) == exact_rows(
            row.query(sql, advance_clock=False)
        )

    @settings(max_examples=40, deadline=None)
    @given(rows_strategy, aggregate_query_strategy)
    def test_aggregates_identical_including_float_bits(self, rows, sql):
        vec, row = build_pair(rows)
        assert exact_rows(vec.query(sql, advance_clock=False)) == exact_rows(
            row.query(sql, advance_clock=False)
        )

    @settings(max_examples=25, deadline=None)
    @given(join_rows_strategy, u_rows_strategy, join_query_strategy)
    def test_joins_identical(self, t_rows, u_rows, sql):
        vec, row = build_join_pair(t_rows, u_rows)
        assert exact_rows(vec.query(sql, advance_clock=False)) == exact_rows(
            row.query(sql, advance_clock=False)
        )

    @settings(max_examples=20, deadline=None)
    @given(rows_strategy, filter_query_strategy)
    def test_rows_shipped_identical(self, rows, sql):
        """The accounting the market prices on must not depend on the
        execution style -- same plan, same shipped-row count."""
        vec, row = build_pair(rows)
        vec_result = vec.query(sql, advance_clock=False)
        row_result = row.query(sql, advance_clock=False)
        assert vec_result.report.rows_shipped == row_result.report.rows_shipped
        assert vec_result.report.rows_fetched == row_result.report.rows_fetched

    @settings(max_examples=15, deadline=None)
    @given(rows_strategy, filter_query_strategy)
    def test_cache_hits_identical(self, rows, sql):
        vec, row = build_pair(rows, cache=True)
        for engine in (vec, row):
            engine.query(sql, advance_clock=False)  # warm
        assert exact_rows(vec.query(sql, advance_clock=False)) == exact_rows(
            row.query(sql, advance_clock=False)
        )


# Value pools exercising every encoder edge: NULLs, bool-vs-int identity,
# negative-zero floats, NaN, empty strings, shared-prefix identifiers.
scalar_strategy = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**40), max_value=2**40),
    st.floats(allow_nan=True, allow_infinity=True, width=64),
    st.sampled_from(["", "a", "hotel-001", "hotel-002", "hotel-010", "täg"]),
    st.text(max_size=12),
)

column_strategy = st.lists(scalar_strategy, min_size=0, max_size=120)


def same_values(decoded, original):
    assert len(decoded) == len(original)
    for got, want in zip(decoded, original):
        assert type(got) is type(want)
        assert repr(got) == repr(want)


class TestEncodingRoundTrips:
    @settings(max_examples=150, deadline=None)
    @given(column_strategy)
    def test_any_column_round_trips(self, values):
        encoded = encode_column("c", values)
        same_values(decode_column(encoded), values)
        assert encoded.count == len(values)
        assert encoded.encoded_bytes <= encoded.raw_bytes

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.sampled_from([None, "gold", "silver", "bronze"]),
            min_size=80,
            max_size=200,
        )
    )
    def test_low_cardinality_strings_pick_dictionary(self, values):
        encoded = encode_column("chain", values)
        same_values(decode_column(encoded), values)
        assert encoded.encoding in ("dict", "rle")
        assert encoded.encoded_bytes < encoded.raw_bytes

    def test_constant_column_picks_rle(self):
        encoded = encode_column("flag", [True] * 500)
        assert encoded.encoding == "rle"
        same_values(decode_column(encoded), [True] * 500)

    def test_sorted_ints_pick_delta(self):
        values = list(range(10_000, 11_000))
        encoded = encode_column("id", values)
        assert encoded.encoding == "delta"
        same_values(decode_column(encoded), values)
        assert encoded.encoded_bytes < encoded.raw_bytes // 4

    def test_clustered_identifiers_pick_prefix(self):
        values = [f"hotel/chain-07/property-{i:05d}" for i in range(400)]
        encoded = encode_column("name", values)
        assert encoded.encoding == "prefix"
        same_values(decode_column(encoded), values)
        assert encoded.encoded_bytes < encoded.raw_bytes // 2

    def test_unhashable_values_fall_back_to_plain(self):
        values = [[1], [2], [1], None]
        encoded = encode_column("blob", values)
        assert encoded.encoding == "plain"
        assert decode_column(encoded) == values

    def test_bool_and_int_never_collapse(self):
        values = [True, 1, False, 0, True, 1] * 40
        encoded = encode_column("mixed", values)
        same_values(decode_column(encoded), values)

    def test_negative_zero_and_nan_survive(self):
        values = [0.0, -0.0, math.nan, math.nan, -0.0, 0.0] * 30
        encoded = encode_column("f", values)
        same_values(decode_column(encoded), values)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=-100, max_value=100),
                st.one_of(st.none(), st.sampled_from(["x", "y"])),
            ),
            min_size=1,
            max_size=80,
        )
    )
    def test_batch_round_trip_preserves_envs(self, rows):
        schema = Schema(
            "t", (Field("k", DataType.INTEGER), Field("tag", DataType.STRING))
        )
        table = Table(schema, rows, validate=False)
        for chunk in table_chunks("t", table, ambiguous=set(), batch_size=16):
            decoded = decode_batch(encode_batch(chunk))
            assert decoded.to_envs() == chunk.to_envs()
            assert decoded.count == chunk.count


def single_table_engine(rows, site_count, columnar=True, cache=False):
    clock = SimClock()
    catalog = FederationCatalog(clock)
    names = [catalog.make_site(f"s{i}").name for i in range(site_count)]
    schema = Schema(
        "t", (Field("k", DataType.INTEGER), Field("tag", DataType.STRING))
    )
    table = Table(schema, rows, validate=False)
    fragment_count = min(3, max(1, site_count))
    placement = [[names[i % site_count]] for i in range(fragment_count)]
    catalog.load_fragmented(table, fragment_count, placement)
    return FederatedEngine(
        catalog,
        cache=SemanticCache(clock) if cache else None,
        columnar=columnar,
    )


ROWS = [(i, f"tag-{i % 5}") for i in range(60)]


class TestShipAccounting:
    """rows_shipped/bytes_shipped count only real cross-site transfers."""

    def test_multi_site_query_ships_bytes(self):
        engine = single_table_engine(ROWS, site_count=3)
        result = engine.query("select k, tag from t", advance_clock=False)
        assert result.report.rows_shipped > 0
        assert result.report.bytes_shipped > 0

    def test_single_site_ships_nothing(self):
        engine = single_table_engine(ROWS, site_count=1)
        result = engine.query("select k, tag from t", advance_clock=False)
        assert len(result.table) == len(ROWS)
        assert result.report.rows_shipped == 0
        assert result.report.bytes_shipped == 0

    def test_cache_served_scan_ships_nothing(self):
        engine = single_table_engine(ROWS, site_count=3, cache=True)
        engine.query("select k, tag from t where k >= 0", advance_clock=False)
        hit = engine.query(
            "select k, tag from t where k >= 10", advance_clock=False
        )
        assert hit.plan.assignments["t"].kind == "cache"
        assert hit.report.rows_shipped == 0
        assert hit.report.bytes_shipped == 0
        assert len(hit.table) == 50

    def test_fully_pruned_scan_ships_nothing(self):
        engine = single_table_engine(ROWS, site_count=3)
        result = engine.query(
            "select k from t where k > 10000", advance_clock=False
        )
        assignment = result.plan.assignments["t"]
        assert assignment.pruned_fragments == assignment.total_fragments
        assert len(result.table) == 0
        assert result.report.rows_shipped == 0
        assert result.report.bytes_shipped == 0
        assert result.report.rows_fetched == 0

    def test_row_engine_counts_same_rows_but_prices_bytes_only_when_columnar(
        self,
    ):
        vec = single_table_engine(ROWS, site_count=3, columnar=True)
        row = single_table_engine(ROWS, site_count=3, columnar=False)
        vec_result = vec.query("select k, tag from t", advance_clock=False)
        row_result = row.query("select k, tag from t", advance_clock=False)
        assert vec_result.report.rows_shipped == row_result.report.rows_shipped

    def test_encoding_beats_naive_rows_on_wire(self):
        """Encoded shipment must land under the naive per-row serialization
        it replaces (dict/RLE on the low-cardinality tag column)."""
        engine = single_table_engine(ROWS, site_count=3)
        result = engine.query("select k, tag from t", advance_clock=False)
        ship = next(
            (
                stats
                for stats in result.report.operators.walk()
                if stats.name == "Ship"
            ),
            None,
        )
        assert ship is not None
        assert ship.raw_bytes > 0
        assert ship.encoded_bytes < ship.raw_bytes
        assert result.report.bytes_shipped == ship.encoded_bytes

    def test_explain_analyze_reports_batches_and_bytes(self):
        engine = single_table_engine(ROWS, site_count=3)
        result = engine.query(
            "select k, tag from t where k < 40", advance_clock=False
        )
        rendered = engine.render_analyze(result)
        assert "bytes shipped:" in rendered
        assert "batches=" in rendered
        assert "bytes=" in rendered

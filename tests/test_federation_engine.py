"""End-to-end tests of the federated engine: SQL, views, XPath, MATCH, cache."""

import pytest

from repro.connect.source import Predicate, StaticSource
from repro.core import DataType, Field, Schema, Table
from repro.core.errors import QueryError
from repro.federation import (
    FederatedEngine,
    FederationCatalog,
    SemanticCache,
)
from repro.federation.engine import LIVE_ONLY
from repro.ir.search import SearchMode
from repro.sim import EventLoop, SimClock


def parts_schema():
    return Schema(
        "parts",
        (
            Field("sku", DataType.STRING),
            Field("name", DataType.STRING),
            Field("price", DataType.FLOAT),
            Field("supplier_id", DataType.STRING),
        ),
    )


def suppliers_schema():
    return Schema(
        "suppliers",
        (Field("supplier_id", DataType.STRING), Field("country", DataType.STRING)),
    )


def make_engine(site_count=4):
    clock = SimClock()
    catalog = FederationCatalog(clock)
    names = [f"s{i}" for i in range(site_count)]
    for name in names:
        catalog.make_site(name)
    parts_rows = [
        ("A-1", "black india ink", 5.0, "sup0"),
        ("A-2", "blue ink cartridge", 6.0, "sup0"),
        ("A-3", "cordless drill", 90.0, "sup1"),
        ("A-4", "corded drill press", 150.0, "sup1"),
        ("A-5", "hex bolt", 0.5, "sup2"),
        ("A-6", "mechanical pencil lead refills", 2.0, "sup2"),
    ]
    parts = Table(parts_schema(), parts_rows)
    catalog.load_fragmented(parts, 2, [["s0", "s1"], ["s2", "s3"]])
    suppliers = Table(
        suppliers_schema(), [("sup0", "US"), ("sup1", "FR"), ("sup2", "US")]
    )
    catalog.load_fragmented(suppliers, 1, [["s1"]])
    catalog.build_text_index("parts", "name", parts, "sku")
    return FederatedEngine(catalog)


class TestSqlEndToEnd:
    def test_select_star(self):
        engine = make_engine()
        result = engine.query("select * from parts")
        assert len(result.table) == 6
        assert set(result.table.schema.field_names) == {
            "sku", "name", "price", "supplier_id"
        }

    def test_filter_and_projection(self):
        engine = make_engine()
        result = engine.query("select sku from parts where price > 50")
        assert sorted(result.table.column("sku")) == ["A-3", "A-4"]

    def test_pushdown_reduces_rows_fetched(self):
        engine = make_engine()
        result = engine.query("select sku from parts where price > 50")
        assert result.report.rows_fetched == 2  # filtered at the sites

    def test_join(self):
        engine = make_engine()
        result = engine.query(
            "select p.sku, s.country from parts p "
            "join suppliers s on p.supplier_id = s.supplier_id "
            "where s.country = 'FR'"
        )
        assert sorted(result.table.column("sku")) == ["A-3", "A-4"]

    def test_aggregates_with_group_and_having(self):
        engine = make_engine()
        result = engine.query(
            "select supplier_id, count(*) as n, max(price) as top from parts "
            "group by supplier_id having count(*) > 1 order by supplier_id"
        )
        rows = result.table.to_dicts()
        assert len(rows) == 3
        assert rows[0] == {"supplier_id": "sup0", "n": 2, "top": 6.0}

    def test_order_by_and_limit(self):
        engine = make_engine()
        result = engine.query("select sku, price from parts order by price desc limit 2")
        assert result.table.column("sku") == ["A-4", "A-3"]

    def test_distinct(self):
        engine = make_engine()
        result = engine.query("select distinct supplier_id from parts")
        assert len(result.table) == 3

    def test_expression_select_items(self):
        engine = make_engine()
        result = engine.query(
            "select sku, price * 2 as doubled from parts where sku = 'A-1'"
        )
        assert result.table.to_dicts() == [{"sku": "A-1", "doubled": 10.0}]

    def test_fuzzy_function_in_where(self):
        engine = make_engine()
        result = engine.query(
            "select sku from parts where fuzzy(name, 'ink black india') > 0.9"
        )
        assert result.table.column("sku") == ["A-1"]

    def test_unknown_table_rejected(self):
        engine = make_engine()
        with pytest.raises(QueryError):
            engine.query("select * from ghosts")

    def test_response_time_positive_and_clock_advances(self):
        engine = make_engine()
        before = engine.catalog.clock.now()
        result = engine.query("select * from parts")
        assert result.report.response_seconds > 0
        assert engine.catalog.clock.now() >= before + result.report.response_seconds

    def test_parallel_scan_cost_is_max_not_sum(self):
        engine = make_engine()
        result = engine.query("select * from parts", max_staleness=LIVE_ONLY)
        total_work = sum(result.report.site_work.values())
        assert result.report.response_seconds < total_work + 1.0  # sanity
        assert len(result.report.site_work) >= 2  # both fragments scanned


class TestMatchAccessPath:
    def test_match_uses_text_index(self):
        engine = make_engine()
        result = engine.query("select sku from parts where match(name, 'drill')")
        assert sorted(result.table.column("sku")) == ["A-3", "A-4"]
        assert engine.catalog.entry("parts").text_index is not None
        assert result.plan.assignments["parts"].text_filter == ("name", "drill")

    def test_match_on_unindexed_column_falls_back(self):
        engine = make_engine()
        result = engine.query("select sku from parts where match(sku, 'A-1')")
        assert result.table.column("sku") == ["A-1"]
        assert result.plan.assignments["parts"].text_filter is None

    def test_match_combined_with_other_predicates(self):
        engine = make_engine()
        result = engine.query(
            "select sku from parts where match(name, 'drill') and price < 100"
        )
        assert result.table.column("sku") == ["A-3"]


class TestFailover:
    def test_query_survives_one_replica_down(self):
        engine = make_engine()
        engine.catalog.site("s0").up = False
        result = engine.query("select * from parts")
        assert len(result.table) == 6
        assert "s0" not in result.report.site_work

    def test_unreplicated_fragment_down_fails(self):
        engine = make_engine()
        engine.catalog.site("s1").up = False  # suppliers only live on s1
        with pytest.raises(QueryError):
            engine.query("select * from suppliers")


class TestMaterializedViews:
    def test_view_serves_when_staleness_allowed(self):
        engine = make_engine()
        engine.create_materialized_view("parts_mv", "parts", "s0")
        result = engine.query("select count(*) as n from parts", max_staleness=60.0)
        assert result.plan.assignments["parts"].kind == "view"
        assert result.table.to_dicts() == [{"n": 6}]

    def test_live_only_bypasses_view(self):
        engine = make_engine()
        engine.create_materialized_view("parts_mv", "parts", "s0")
        result = engine.query("select count(*) as n from parts", max_staleness=LIVE_ONLY)
        assert result.plan.assignments["parts"].kind == "fragments"

    def test_stale_view_not_served(self):
        engine = make_engine()
        view = engine.create_materialized_view("parts_mv", "parts", "s0")
        engine.catalog.clock.advance(100.0)
        result = engine.query("select count(*) as n from parts", max_staleness=50.0)
        assert result.plan.assignments["parts"].kind == "fragments"
        assert view.staleness(engine.catalog.clock.now()) > 50.0

    def test_view_staleness_reported(self):
        engine = make_engine()
        engine.create_materialized_view("parts_mv", "parts", "s0")
        engine.catalog.clock.advance(30.0)
        result = engine.query("select count(*) as n from parts", max_staleness=60.0)
        assert result.report.staleness_seconds == pytest.approx(30.0, abs=1.0)

    def test_query_view_by_name(self):
        engine = make_engine()
        engine.create_materialized_view("parts_mv", "parts", "s0")
        result = engine.query("select count(*) as n from parts_mv")
        assert result.table.to_dicts() == [{"n": 6}]

    def test_scheduled_refresh_keeps_view_current(self):
        engine = make_engine()
        loop = EventLoop(engine.catalog.clock)
        view = engine.create_materialized_view(
            "parts_mv", "parts", "s0", refresh_interval=10.0
        )
        engine.schedule_view_refresh(view, loop)
        loop.run_until(35.0)
        assert view.refresh_count == 1 + 3  # initial fill + three scheduled

    def test_view_sees_updates_only_after_refresh(self):
        engine = make_engine()
        view = engine.create_materialized_view("parts_mv", "parts", "s0")
        # Mutate the base: replace fragment 0's replica data everywhere.
        entry = engine.catalog.entry("parts")
        fragment = entry.fragments[0]
        new_rows = Table(parts_schema(), [("Z-9", "new thing", 1.0, "sup9")])
        for site_name in fragment.replica_sites():
            site = engine.catalog.site(site_name)
            site.host(StaticSource("x", new_rows), fragment.replicas[site_name])
        stale = engine.query("select * from parts", max_staleness=None)
        live = engine.query("select * from parts", max_staleness=LIVE_ONLY)
        assert "Z-9" not in stale.table.column("sku")
        assert "Z-9" in live.table.column("sku")
        engine.refresh_view(view)
        refreshed = engine.query("select * from parts", max_staleness=None)
        assert "Z-9" in refreshed.table.column("sku")


class TestXmlSurface:
    def test_xml_view_structure(self):
        engine = make_engine()
        document = engine.xml_view("suppliers")
        assert document.tag == "suppliers"
        assert len(document.child_elements("row")) == 3

    def test_xpath_query(self):
        engine = make_engine()
        skus = engine.xpath_query("parts", "//row[supplier_id='sup1']/sku/text()")
        assert sorted(skus) == ["A-3", "A-4"]

    def test_xpath_equivalent_to_sql(self):
        engine = make_engine()
        sql_result = engine.query(
            "select sku from parts where supplier_id = 'sup2'"
        ).table.column("sku")
        xpath_result = engine.xpath_query("parts", "//row[supplier_id='sup2']/sku/text()")
        assert sorted(sql_result) == sorted(xpath_result)


class TestSearchSurface:
    def test_search_over_text_index(self):
        engine = make_engine()
        hits = engine.search("parts", "drill", mode=SearchMode.EXACT)
        assert {h.doc_id for h in hits} == {"A-3", "A-4"}

    def test_fuzzy_search_paper_example(self):
        engine = make_engine()
        hits = engine.search("parts", "drlls: crdlss", mode=SearchMode.FUZZY)
        assert "A-3" in {h.doc_id for h in hits}

    def test_synonym_search_with_vocabulary(self):
        from repro.workbench import SynonymTable

        engine = make_engine()
        synonyms = SynonymTable()
        synonyms.add_group(["india ink", "black ink"])
        engine.set_vocabulary(synonyms=synonyms)
        india = {h.doc_id for h in engine.search("parts", "india ink", mode=SearchMode.SYNONYM)}
        black = {h.doc_id for h in engine.search("parts", "black ink", mode=SearchMode.SYNONYM)}
        assert india == black
        assert "A-1" in india

    def test_search_unindexed_table_rejected(self):
        engine = make_engine()
        with pytest.raises(QueryError):
            engine.search("suppliers", "france")


class TestSemanticCache:
    def make_cache(self):
        clock = SimClock()
        return clock, SemanticCache(clock, max_rows=100)

    def table(self, n=10):
        schema = Schema("t", (Field("a", DataType.INTEGER),))
        return Table(schema, [(i,) for i in range(n)])

    def test_exact_region_hit(self):
        _, cache = self.make_cache()
        cache.store("t", [Predicate("a", ">", 5)], self.table(4))
        assert cache.lookup("t", [Predicate("a", ">", 5)]) is not None
        assert cache.hits == 1

    def test_weaker_region_covers_stronger_request(self):
        _, cache = self.make_cache()
        cache.store("t", [], self.table(10))  # whole table cached
        result = cache.lookup("t", [Predicate("a", ">=", 8)])
        assert result is not None
        assert len(result) == 2  # residual predicate applied locally

    def test_stronger_region_does_not_cover(self):
        _, cache = self.make_cache()
        cache.store("t", [Predicate("a", ">", 5)], self.table(4))
        assert cache.lookup("t", []) is None

    def test_per_request_staleness_does_not_evict(self):
        clock, cache = self.make_cache()
        cache.store("t", [], self.table())
        clock.advance(100.0)
        assert cache.lookup("t", [], max_staleness=50.0) is None  # too stale here
        assert cache.lookup("t", [], max_staleness=500.0) is not None  # still cached

    def test_cache_own_ttl_evicts(self):
        clock = SimClock()
        cache = SemanticCache(clock, max_rows=100, max_staleness=60.0)
        cache.store("t", [], self.table())
        clock.advance(100.0)
        assert cache.lookup("t", []) is None
        assert len(cache) == 0

    def test_lru_eviction_by_rows(self):
        _, cache = self.make_cache()
        cache.store("t", [Predicate("a", "=", 1)], self.table(60))
        cache.store("t", [Predicate("a", "=", 2)], self.table(60))
        assert len(cache) == 1  # first entry evicted to fit 100-row budget

    def test_invalidate_table(self):
        _, cache = self.make_cache()
        cache.store("t", [], self.table())
        cache.store("u", [], self.table())
        assert cache.invalidate_table("t") == 1
        assert cache.lookup("t", []) is None
        assert cache.lookup("u", []) is not None

    def test_hit_rate(self):
        _, cache = self.make_cache()
        cache.store("t", [], self.table())
        cache.lookup("t", [])
        cache.lookup("ghost", [])
        assert cache.hit_rate == 0.5


class TestExecutionFailover:
    def test_scan_reroutes_when_site_dies_after_optimization(self):
        engine = make_engine()
        from repro.sql import build_plan, parse_sql

        plan = engine.optimizer.optimize(
            build_plan(
                parse_sql("select sku from parts"),
                engine.catalog.binding_fields({"parts": "parts"}),
            )
        )
        # Kill whichever sites the optimizer chose, *after* planning.
        for assignment in plan.assignments.values():
            for choice in assignment.choices:
                engine.catalog.site(choice.site_name).up = False
        table, report = engine.executor.execute(plan)
        assert len(table) == 6
        assert report.failovers >= 1

    def test_all_replicas_dead_still_fails(self):
        engine = make_engine()
        from repro.sql import build_plan, parse_sql

        plan = engine.optimizer.optimize(
            build_plan(
                parse_sql("select sku from parts"),
                engine.catalog.binding_fields({"parts": "parts"}),
            )
        )
        for name in ("s0", "s1", "s2", "s3"):
            engine.catalog.site(name).up = False
        with pytest.raises(QueryError):
            engine.executor.execute(plan)


class TestExplain:
    def test_explain_shows_scan_placement_and_pushdown(self):
        engine = make_engine()
        text = engine.explain("select sku from parts where price > 50")
        assert "optimizer: agoric" in text
        assert "scan parts" in text
        assert "pushdown(price > 50" in text
        assert "fragments [" in text

    def test_explain_shows_view_access_path(self):
        engine = make_engine()
        engine.create_materialized_view("parts_mv", "parts", "s0")
        text = engine.explain("select sku from parts", max_staleness=60.0)
        assert "view parts_mv @ s0" in text

    def test_explain_shows_text_index(self):
        engine = make_engine()
        text = engine.explain("select sku from parts where match(name, 'drill')")
        assert "text-index('name', 'drill')" in text

    def test_explain_join_tree(self):
        engine = make_engine()
        text = engine.explain(
            "select p.sku from parts p left join suppliers s "
            "on p.supplier_id = s.supplier_id order by p.sku limit 3"
        )
        assert "limit" in text
        assert "sort" in text
        assert "left join" in text
        assert text.count("scan") == 2

    def test_explain_does_not_execute(self):
        engine = make_engine()
        before = engine.metrics.counter("queries").value
        engine.explain("select * from parts")
        assert engine.metrics.counter("queries").value == before

"""Tests for wrapper induction and the scripted browser agent."""

import pytest

from repro.connect import (
    BrowserAgent,
    NavigationScript,
    SimulatedWeb,
    WebClient,
    WrapperInducer,
)
from repro.connect.agent import Collect, CollectAllPages, FollowLink, Goto, SubmitForm
from repro.connect.induction import common_prefix, common_suffix
from repro.connect.sitegen import build_supplier_site
from repro.core.errors import WrapperError
from repro.sim import SimClock


def render_page(records, template="<tr><td class='s'>{sku}</td><td class='n'>{name}</td></tr>"):
    rows = "".join(template.format(**r) for r in records)
    return f"<html><body><table>{rows}</table></body></html>"


TRAIN_RECORDS = [
    {"sku": "A-1", "name": "black ink"},
    {"sku": "A-2", "name": "blue ink"},
    {"sku": "A-3", "name": "hex bolt"},
]


class TestDelimiterHelpers:
    def test_common_suffix(self):
        assert common_suffix(["xxab", "yyab", "ab"]) == "ab"
        assert common_suffix(["abc", "xyz"]) == ""
        assert common_suffix([]) == ""

    def test_common_prefix(self):
        assert common_prefix(["abx", "aby"]) == "ab"
        assert common_prefix(["a"]) == "a"
        assert common_prefix([]) == ""


class TestWrapperInducer:
    def test_learns_from_two_examples(self):
        page = render_page(TRAIN_RECORDS)
        inducer = WrapperInducer(("sku", "name"))
        inducer.add_example(page, TRAIN_RECORDS[0])
        inducer.add_example(page, TRAIN_RECORDS[1])
        wrapper = inducer.learn()
        extracted = wrapper.extract(page)
        assert extracted == TRAIN_RECORDS

    def test_learned_wrapper_generalizes_to_new_page(self):
        inducer = WrapperInducer(("sku", "name"))
        train = render_page(TRAIN_RECORDS)
        inducer.add_example(train, TRAIN_RECORDS[0])
        inducer.add_example(train, TRAIN_RECORDS[1])
        wrapper = inducer.learn()
        unseen = [{"sku": "Z-9", "name": "grease gun"}, {"sku": "Z-10", "name": "pliers"}]
        assert wrapper.extract(render_page(unseen)) == unseen

    def test_single_example_may_overfit_then_fix_by_example_repairs(self):
        page = render_page(TRAIN_RECORDS)
        inducer = WrapperInducer(("sku", "name"))
        inducer.add_example(page, TRAIN_RECORDS[1])  # middle record: left context
        wrapper = inducer.learn()                    # includes previous row's text
        accuracy_before = WrapperInducer.accuracy(wrapper, page, TRAIN_RECORDS)
        repaired = inducer.fix_by_example(page, TRAIN_RECORDS[2])
        accuracy_after = WrapperInducer.accuracy(repaired, page, TRAIN_RECORDS)
        assert accuracy_after == 1.0
        assert accuracy_after >= accuracy_before

    def test_accuracy_metric(self):
        page = render_page(TRAIN_RECORDS)
        inducer = WrapperInducer(("sku", "name"))
        inducer.add_example(page, TRAIN_RECORDS[0])
        inducer.add_example(page, TRAIN_RECORDS[1])
        wrapper = inducer.learn()
        assert WrapperInducer.accuracy(wrapper, page, TRAIN_RECORDS) == 1.0
        assert WrapperInducer.accuracy(wrapper, page, [{"sku": "X", "name": "y"}]) == 0.0
        assert WrapperInducer.accuracy(wrapper, page, []) == 1.0

    def test_requires_fields(self):
        with pytest.raises(WrapperError):
            WrapperInducer(())

    def test_zero_examples_rejected(self):
        with pytest.raises(WrapperError):
            WrapperInducer(("a",)).learn()

    def test_example_missing_field_rejected(self):
        inducer = WrapperInducer(("sku", "name"))
        with pytest.raises(WrapperError):
            inducer.add_example("page", {"sku": "A-1"})

    def test_value_not_on_page_rejected(self):
        inducer = WrapperInducer(("sku",))
        inducer.add_example("<td>A-1</td>", {"sku": "GHOST"})
        with pytest.raises(WrapperError):
            inducer.learn()

    def test_conflicting_templates_rejected(self):
        inducer = WrapperInducer(("sku",))
        inducer.add_example("<td class='s'>A-1</td>", {"sku": "A-1"})
        inducer.add_example("[sku: B-2]", {"sku": "B-2"})
        with pytest.raises(WrapperError):
            inducer.learn()


def make_login_site():
    web = SimulatedWeb(SimClock())
    products = [
        {"sku": f"P-{i}", "name": f"part {i}", "price": 2.0, "currency": "USD", "qty": 4}
        for i in range(55)
    ]
    supplier = build_supplier_site(
        "private.example", products, requires_login=True, page_size=25
    )
    web.register(supplier.site)
    return web, supplier


class TestBrowserAgent:
    def test_login_then_collect_all_pages(self):
        web, supplier = make_login_site()
        agent = BrowserAgent(WebClient(web))
        script = NavigationScript(
            [
                Goto("http://private.example/login"),
                SubmitForm({"user": "buyer", "password": "secret"}),
                CollectAllPages(next_selector="a.next"),
            ]
        )
        pages = agent.run(script)
        assert len(pages) == 3
        assert "P-0" in pages[0]
        assert "P-54" in pages[-1]

    def test_without_login_catalog_redirects_to_form(self):
        web, supplier = make_login_site()
        agent = BrowserAgent(WebClient(web))
        agent.goto(supplier.catalog_url())
        assert agent.dom.find("form") is not None

    def test_follow_link_by_text(self):
        web, supplier = make_login_site()
        agent = BrowserAgent(WebClient(web))
        agent.goto("http://private.example/")
        agent.follow_link(text="Page 2")
        assert agent.dom.find("form") is not None  # redirected to login

    def test_follow_missing_link_raises(self):
        web, _ = make_login_site()
        agent = BrowserAgent(WebClient(web))
        agent.goto("http://private.example/")
        with pytest.raises(WrapperError):
            agent.follow_link(text="no such link")

    def test_submit_form_requires_a_form(self):
        web, _ = make_login_site()
        agent = BrowserAgent(WebClient(web))
        agent.goto("http://private.example/")
        with pytest.raises(WrapperError):
            agent.submit_form({"a": "b"})

    def test_agent_requires_current_page(self):
        web, _ = make_login_site()
        agent = BrowserAgent(WebClient(web))
        with pytest.raises(WrapperError):
            agent.collect()

    def test_bad_credentials_do_not_establish_session(self):
        web, supplier = make_login_site()
        agent = BrowserAgent(WebClient(web))
        agent.goto("http://private.example/login")
        response = agent.submit_form({"user": "buyer", "password": "nope"})
        assert response.status == 401
        agent.goto(supplier.catalog_url())
        assert agent.dom.find("form") is not None  # still locked out

    def test_collect_step(self):
        web, _ = make_login_site()
        agent = BrowserAgent(WebClient(web))
        pages = agent.run(
            NavigationScript([Goto("http://private.example/"), Collect("index")])
        )
        assert len(pages) == 1
        assert agent.collected[0][0] == "index"

    def test_follow_link_step_in_script(self):
        web, _ = make_login_site()
        agent = BrowserAgent(WebClient(web))
        pages = agent.run(
            NavigationScript(
                [
                    Goto("http://private.example/"),
                    FollowLink(selector="ul.pages a"),
                    Collect(),
                ]
            )
        )
        assert len(pages) == 1

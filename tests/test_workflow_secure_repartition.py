"""Tests for workflows, secure channels, and online repartitioning."""

import pytest

from repro.core import DataType, Field, Schema, Table, TransformError
from repro.core.errors import QueryError
from repro.federation import (
    FederatedEngine,
    FederationCatalog,
    SecureNetwork,
    TamperedPayloadError,
    seal,
    unseal,
)
from repro.federation.secure import establish_session
from repro.sim import SimClock
from repro.workbench import Workflow, WorkflowContext, WorkflowStep


class TestWorkflow:
    def build(self):
        workflow = Workflow("ingest")

        @workflow.step("scrape")
        def scrape(context, upstream):
            return [1, 2, 3]

        @workflow.step("normalize", depends_on=["scrape"])
        def normalize(context, upstream):
            return [x * 10 for x in upstream["scrape"]]

        @workflow.step("publish", depends_on=["normalize"])
        def publish(context, upstream):
            context["published"] = upstream["normalize"]
            return len(upstream["normalize"])

        return workflow

    def test_runs_in_dependency_order(self):
        run = self.build().run()
        assert run.succeeded
        assert run.output_of("publish") == 3
        assert run.counts() == {"ok": 3, "failed": 0, "skipped": 0}

    def test_context_shared_across_steps(self):
        context = WorkflowContext()
        self.build().run(context)
        assert context["published"] == [10, 20, 30]

    def test_failure_skips_transitive_dependents(self):
        workflow = Workflow("fragile")
        workflow.add_step(WorkflowStep("a", lambda c, u: 1))
        workflow.add_step(
            WorkflowStep("b", lambda c, u: 1 / 0, depends_on=("a",))
        )
        workflow.add_step(WorkflowStep("c", lambda c, u: 2, depends_on=("b",)))
        workflow.add_step(WorkflowStep("d", lambda c, u: 3, depends_on=("a",)))
        run = workflow.run()
        assert run.results["b"].status == "failed"
        assert run.results["c"].status == "skipped"
        assert run.results["d"].status == "ok"  # independent branch survives
        assert not run.succeeded

    def test_output_of_failed_step_raises(self):
        workflow = Workflow("w")
        workflow.add_step(WorkflowStep("boom", lambda c, u: 1 / 0))
        run = workflow.run()
        with pytest.raises(TransformError):
            run.output_of("boom")

    def test_duplicate_step_rejected(self):
        workflow = Workflow("w")
        workflow.add_step(WorkflowStep("a", lambda c, u: 1))
        with pytest.raises(TransformError):
            workflow.add_step(WorkflowStep("a", lambda c, u: 2))

    def test_unknown_dependency_rejected(self):
        workflow = Workflow("w")
        with pytest.raises(TransformError):
            workflow.add_step(WorkflowStep("a", lambda c, u: 1, depends_on=("ghost",)))


class TestSecureChannels:
    def test_seal_unseal_round_trip(self):
        key = establish_session("integrator", "supplier", 42)
        envelope = seal("<catalog>prices</catalog>", key)
        assert unseal(envelope, key) == "<catalog>prices</catalog>"

    def test_ciphertext_hides_payload(self):
        key = establish_session("a", "b", 42)
        envelope = seal("secret price list", key)
        assert b"secret" not in envelope

    def test_tampering_detected(self):
        key = establish_session("a", "b", 42)
        envelope = bytearray(seal("pay 100 dollars", key))
        envelope[-1] ^= 0xFF
        with pytest.raises(TamperedPayloadError):
            unseal(bytes(envelope), key)

    def test_wrong_key_rejected(self):
        key_a = establish_session("a", "b", 42)
        key_b = establish_session("a", "b", 43)
        with pytest.raises(TamperedPayloadError):
            unseal(seal("hello", key_a), key_b)

    def test_session_key_is_pair_symmetric(self):
        assert establish_session("a", "b", 1) == establish_session("b", "a", 1)

    def test_first_transfer_pays_handshake(self):
        network = SecureNetwork(base_latency=0.1, seconds_per_row=0.001,
                                handshake_seconds=0.5, encryption_factor=1.2)
        first = network.transfer_seconds("a", "b", 100)
        second = network.transfer_seconds("a", "b", 100)
        assert first == pytest.approx(0.5 + 0.2 * 1.2)
        assert second == pytest.approx(0.2 * 1.2)
        assert network.handshakes_performed == 1

    def test_local_transfer_free_even_secured(self):
        assert SecureNetwork().transfer_seconds("a", "a", 1000) == 0.0

    def test_bad_factor_rejected(self):
        with pytest.raises(ValueError):
            SecureNetwork(encryption_factor=0.5)

    def test_secure_federation_queries_still_work(self):
        clock = SimClock()
        catalog = FederationCatalog(clock, network=SecureNetwork())
        names = [catalog.make_site(f"s{i}").name for i in range(2)]
        schema = Schema("t", (Field("a", DataType.INTEGER),))
        catalog.load_fragmented(Table(schema, [(i,) for i in range(10)]), 2,
                                [[names[0]], [names[1]]])
        engine = FederatedEngine(catalog)
        result = engine.query("select a from t where a >= 5")
        assert len(result.table) == 5
        assert catalog.network.handshakes_performed >= 1


class TestRepartition:
    def build(self):
        catalog = FederationCatalog(SimClock())
        names = [catalog.make_site(f"s{i}").name for i in range(4)]
        schema = Schema("t", (Field("a", DataType.INTEGER),))
        catalog.load_fragmented(
            Table(schema, [(i,) for i in range(100)]), 2, [[names[0]], [names[1]]]
        )
        return catalog, names

    def test_repartition_preserves_rows(self):
        catalog, names = self.build()
        engine = FederatedEngine(catalog)
        before = sorted(engine.query("select a from t").table.column("a"))
        catalog.repartition("t", 4, [[n] for n in names])
        after = sorted(engine.query("select a from t").table.column("a"))
        assert before == after
        assert len(catalog.entry("t").fragments) == 4

    def test_repartition_spreads_work(self):
        catalog, names = self.build()
        catalog.repartition("t", 4, [[n] for n in names])
        engine = FederatedEngine(catalog)
        result = engine.query("select a from t")
        assert len(result.report.site_work) == 4

    def test_repartition_can_add_replication(self):
        catalog, names = self.build()
        catalog.repartition("t", 2, [[names[0], names[2]], [names[1], names[3]]])
        catalog.site(names[0]).up = False
        catalog.site(names[1]).up = False
        engine = FederatedEngine(catalog)
        assert len(engine.query("select a from t").table) == 100

    def test_old_replicas_dropped(self):
        catalog, names = self.build()
        catalog.repartition("t", 1, [[names[3]]])
        assert not catalog.site(names[0]).hosted_names
        assert catalog.site(names[3]).hosts("t/f0")

    def test_placement_mismatch_rejected(self):
        catalog, names = self.build()
        with pytest.raises(QueryError):
            catalog.repartition("t", 3, [[names[0]]])

    def test_dead_source_fragment_rejected(self):
        catalog, names = self.build()
        catalog.site(names[0]).up = False
        with pytest.raises(QueryError):
            catalog.repartition("t", 2, [[names[2]], [names[3]]])

"""Property tests for governance: policy equivalence and tenant isolation.

The load-bearing correctness claim of compiled governance is *semantic
transparency*: pushing RLS predicates and column masks into the plan
(where pushdown, pruning, caching and the optimizers can see and price
them) must not change the answer.  The oracle here is a second,
governance-free federation whose table content is literally
``mask(sigma_RLS(T))`` -- the governed engine over raw data must return
bit-identical rows to the plain engine over pre-enforced data, for
arbitrary policies and query shapes.

The second claim is *isolation*: under an adversarial interleaving of
governed and ungoverned tenants over one shared engine -- with the
semantic cache and the artifact store both switched on, and degraded
partial answers allowed -- no row outside a tenant's RLS region and no
unmasked value of a masked column ever reaches that tenant's cursor.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DataType, Field, Schema, Table
from repro.core.errors import QueryError
from repro.federation import (
    ArtifactStore,
    FederatedEngine,
    FederationCatalog,
    SemanticCache,
)
from repro.federation.governance import GovernanceRegistry, mask_value
from repro.sim import SimClock

REGIONS = ("US", "EU", "APAC")

SCHEMA = Schema(
    "accounts",
    (
        Field("id", DataType.STRING),
        Field("region", DataType.STRING),
        Field("secret", DataType.STRING),
        Field("amount", DataType.INTEGER),
    ),
)


def base_rows(count=30):
    return [
        (f"a{i:03d}", REGIONS[i % 3], f"pin-{i:04d}", (i * 7) % 50)
        for i in range(count)
    ]


def load_catalog(rows):
    catalog = FederationCatalog(SimClock())
    for i in range(4):
        catalog.make_site(f"s{i}")
    catalog.load_fragmented(
        Table(SCHEMA, rows), 2, [["s0", "s1"], ["s2", "s3"]]
    )
    return catalog


# A policy is drawn as (SQL row_filter, python predicate, masks dict) so the
# oracle can enforce it on the python side without re-implementing SQL.
ROW_FILTERS = [
    (None, lambda row: True),
    ("region = 'EU'", lambda row: row[1] == "EU"),
    ("region <> 'US'", lambda row: row[1] != "US"),
    ("amount < 25", lambda row: row[3] < 25),
    (
        "region = 'EU' and amount >= 10",
        lambda row: row[1] == "EU" and row[3] >= 10,
    ),
    ("region in ('US', 'APAC')", lambda row: row[1] in ("US", "APAC")),
]

MASK_CHOICES = [
    {},
    {"secret": "redact"},
    {"secret": "hash"},
    {"secret": "null"},
    {"secret": "last4"},
    {"secret": "redact", "id": "hash"},
]

QUERIES = [
    "select * from accounts",
    "select id, amount from accounts where amount < 30",
    "select region, secret from accounts where region <> 'APAC'",
    "select count(*) from accounts",
    "select region, count(*) as n from accounts group by region",
    "select sum(amount) from accounts where amount >= 5",
    "select id from accounts where secret = 'pin-0003'",
    "select id from accounts where secret = '***'",
]

policies = st.tuples(
    st.sampled_from(ROW_FILTERS), st.sampled_from(MASK_CHOICES)
).filter(lambda drawn: drawn[0][0] is not None or drawn[1])


def enforce(rows, keep, masks):
    """The oracle's pre-enforced content: ``mask(sigma_RLS(rows))``."""
    columns = {f.name: i for i, f in enumerate(SCHEMA.fields)}
    out = []
    for row in rows:
        if not keep(row):
            continue
        row = list(row)
        for column, style in masks.items():
            at = columns[column]
            row[at] = mask_value(style, row[at])
        out.append(tuple(row))
    return out


class TestPolicyEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(policy=policies, sql=st.sampled_from(QUERIES))
    def test_governed_equals_plain_engine_over_enforced_data(
        self, policy, sql
    ):
        (row_filter, keep), masks = policy
        rows = base_rows()
        spec = {}
        if row_filter is not None:
            spec["row_filter"] = row_filter
        if masks:
            spec["masks"] = dict(masks)
        manifest = {
            "version": 1,
            "tenants": {"tenant": {"tables": {"accounts": spec}}},
        }
        governed_engine = FederatedEngine(
            load_catalog(rows), governance=GovernanceRegistry(manifest)
        )
        oracle_engine = FederatedEngine(
            load_catalog(enforce(rows, keep, masks))
        )
        governed = governed_engine.query(sql, tenant="tenant").table
        oracle = oracle_engine.query(sql).table
        assert governed.schema.field_names == oracle.schema.field_names
        assert sorted(governed.rows, key=repr) == sorted(
            oracle.rows, key=repr
        )

    @settings(max_examples=15, deadline=None)
    @given(policy=policies, sql=st.sampled_from(QUERIES))
    def test_equivalence_survives_cache_and_artifacts(self, policy, sql):
        # Same oracle, but the governed engine also runs warm: the second
        # execution may be served from the semantic cache or the artifact
        # store, and must still match the cold pre-enforced answer.
        (row_filter, keep), masks = policy
        rows = base_rows()
        spec = {}
        if row_filter is not None:
            spec["row_filter"] = row_filter
        if masks:
            spec["masks"] = dict(masks)
        manifest = {
            "version": 1,
            "tenants": {"tenant": {"tables": {"accounts": spec}}},
        }
        catalog = load_catalog(rows)
        governed_engine = FederatedEngine(
            catalog,
            cache=SemanticCache(catalog.clock),
            artifacts=ArtifactStore(catalog.clock),
            governance=GovernanceRegistry(manifest),
        )
        oracle_engine = FederatedEngine(
            load_catalog(enforce(rows, keep, masks))
        )
        oracle = sorted(oracle_engine.query(sql).table.rows, key=repr)
        cold = governed_engine.query(sql, tenant="tenant").table
        warm = governed_engine.query(sql, tenant="tenant").table
        assert sorted(cold.rows, key=repr) == oracle
        assert sorted(warm.rows, key=repr) == oracle


LEAKAGE_MANIFEST = {
    "version": 1,
    "tenants": {
        "eu-desk": {
            "tables": {
                "accounts": {
                    "row_filter": "region = 'EU'",
                    "masks": {"secret": "redact"},
                }
            }
        },
        "us-desk": {
            "tables": {"accounts": {"row_filter": "region = 'US'"}}
        },
    },
}

# What each governed tenant is allowed to observe, per column.
ALLOWED = {
    "eu-desk": {"region": {"EU"}, "secret": {"***"}},
    "us-desk": {"region": {"US"}, "secret": None},  # secret unmasked, US rows
}


def assert_no_leak(tenant, table, raw_rows):
    names = table.schema.field_names
    allowed = ALLOWED[tenant]
    keep_region = allowed["region"]
    us_secrets = {
        row[2] for row in raw_rows if row[1] not in keep_region
    }
    for row in table.rows:
        env = dict(zip(names, row))
        if "region" in env:
            assert env["region"] in keep_region, (tenant, row)
        if "secret" in env:
            if allowed["secret"] is not None:
                assert env["secret"] in allowed["secret"], (tenant, row)
            else:
                # Unmasked secrets are fine, but only the tenant's own rows'.
                assert env["secret"] not in us_secrets, (tenant, row)


class TestCrossTenantLeakage:
    @settings(max_examples=25, deadline=None)
    @given(
        actions=st.lists(
            st.tuples(
                st.sampled_from(["eu-desk", "us-desk", None]),
                st.sampled_from(
                    [
                        "select * from accounts",
                        "select region, secret from accounts",
                        "select id, region, secret from accounts "
                        "where amount < 40",
                        "select region, secret from accounts "
                        "where region <> 'APAC'",
                    ]
                ),
            ),
            min_size=2,
            max_size=8,
        )
    )
    def test_interleaved_tenants_never_leak(self, actions):
        # One shared engine, cache and artifacts on: every governed answer
        # in an arbitrary interleaving stays inside the tenant's manifest,
        # no matter what earlier tenants populated the caches with.
        rows = base_rows()
        catalog = load_catalog(rows)
        engine = FederatedEngine(
            catalog,
            cache=SemanticCache(catalog.clock),
            artifacts=ArtifactStore(catalog.clock),
            governance=GovernanceRegistry(LEAKAGE_MANIFEST),
        )
        full = sorted(r for r, in
                      engine.query("select id from accounts").table.rows)
        for tenant, sql in actions:
            table = engine.query(sql, tenant=tenant).table
            if tenant is None:
                continue  # the open query only seeds the caches
            assert_no_leak(tenant, table, rows)
        # Governed traffic must not have poisoned the open view either.
        assert sorted(
            r for r, in engine.query("select id from accounts").table.rows
        ) == full

    def test_degraded_partial_answers_stay_governed(self):
        # A partial answer (missing fragments accepted via degraded_ok) must
        # be a subset of the governed answer -- failure handling cannot
        # bypass RLS or masking.
        rows = base_rows()
        catalog = load_catalog(rows)
        engine = FederatedEngine(
            catalog, governance=GovernanceRegistry(LEAKAGE_MANIFEST)
        )
        whole = engine.query(
            "select * from accounts", tenant="eu-desk"
        ).table
        for site in ("s2", "s3"):
            catalog.site(site).up = False
        try:
            partial = engine.query(
                "select * from accounts", tenant="eu-desk", degraded_ok=True
            )
        except QueryError:
            return  # nothing servable at all: a refusal cannot leak
        assert partial.report.completeness <= 1.0
        assert set(partial.table.rows) <= set(whole.rows)
        assert_no_leak("eu-desk", partial.table, rows)

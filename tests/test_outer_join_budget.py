"""Tests for LEFT OUTER JOIN and the Mariposa budget protocol."""

import pytest

from repro.core import DataType, Field, Schema, Table
from repro.federation import (
    BudgetExceededError,
    FederatedEngine,
    FederationCatalog,
)
from repro.sim import SimClock
from repro.sql import parse_sql


def make_engine():
    clock = SimClock()
    catalog = FederationCatalog(clock)
    names = [catalog.make_site(f"s{i}").name for i in range(2)]
    suppliers = Table(
        Schema("suppliers", (Field("sid", DataType.STRING),
                             Field("country", DataType.STRING))),
        [("sup0", "US"), ("sup1", "FR"), ("sup2", "DE")],
    )
    orders = Table(
        Schema("orders", (Field("order_id", DataType.STRING),
                          Field("sid", DataType.STRING),
                          Field("total", DataType.FLOAT))),
        [("o1", "sup0", 10.0), ("o2", "sup0", 5.0), ("o3", "sup1", 7.0)],
    )
    catalog.load_fragmented(suppliers, 1, [[names[0]]])
    catalog.load_fragmented(orders, 1, [[names[1]]])
    return FederatedEngine(catalog)


class TestLeftJoinParsing:
    def test_left_join_parsed(self):
        statement = parse_sql("select * from a left join b on a.x = b.x")
        assert statement.joins[0].join_type == "left"

    def test_left_outer_join_parsed(self):
        statement = parse_sql("select * from a left outer join b on a.x = b.x")
        assert statement.joins[0].join_type == "left"

    def test_plain_join_is_inner(self):
        statement = parse_sql("select * from a join b on a.x = b.x")
        assert statement.joins[0].join_type == "inner"


class TestLeftJoinExecution:
    def test_unmatched_left_rows_preserved_with_nulls(self):
        engine = make_engine()
        result = engine.query(
            "select s.sid, o.order_id from suppliers s "
            "left join orders o on s.sid = o.sid order by s.sid"
        )
        rows = result.table.to_dicts()
        assert {"sid": "sup2", "order_id": None} in rows
        assert len(rows) == 4  # sup0 twice, sup1 once, sup2 null-extended

    def test_inner_join_drops_unmatched(self):
        engine = make_engine()
        result = engine.query(
            "select s.sid from suppliers s join orders o on s.sid = o.sid"
        )
        assert "sup2" not in result.table.column("sid")

    def test_find_suppliers_without_orders(self):
        engine = make_engine()
        result = engine.query(
            "select s.sid from suppliers s "
            "left join orders o on s.sid = o.sid "
            "where o.order_id is null"
        )
        assert result.table.column("sid") == ["sup2"]

    def test_aggregate_over_left_join(self):
        engine = make_engine()
        result = engine.query(
            "select s.sid, count(o.order_id) as n from suppliers s "
            "left join orders o on s.sid = o.sid group by s.sid order by s.sid"
        )
        assert result.table.to_dicts() == [
            {"sid": "sup0", "n": 2},
            {"sid": "sup1", "n": 1},
            {"sid": "sup2", "n": 0},  # COUNT skips the null extension
        ]

    def test_where_on_right_side_not_pushed_into_scan(self):
        engine = make_engine()
        result = engine.query(
            "select s.sid, o.total from suppliers s "
            "left join orders o on s.sid = o.sid "
            "where o.total > 6 or o.total is null order by s.sid"
        )
        rows = result.table.to_dicts()
        assert {"sid": "sup2", "total": None} in rows  # survived the filter
        assert {"sid": "sup0", "total": 10.0} in rows
        assert {"sid": "sup0", "total": 5.0} not in rows

    def test_left_join_with_nonequality_condition(self):
        engine = make_engine()
        result = engine.query(
            "select s.sid, o.order_id from suppliers s "
            "left join orders o on s.sid = o.sid and o.total > 6 "
            "order by s.sid"
        )
        rows = result.table.to_dicts()
        # sup0 keeps only o1 (10.0); sup2 AND sup0's small order null-extend.
        assert {"sid": "sup0", "order_id": "o1"} in rows
        assert {"sid": "sup2", "order_id": None} in rows


class TestBudgetProtocol:
    def test_query_within_budget_succeeds(self):
        engine = make_engine()
        result = engine.query("select sid from suppliers", budget=100.0)
        assert len(result.table) == 3
        assert result.report.price <= 100.0

    def test_unaffordable_query_refused(self):
        engine = make_engine()
        with pytest.raises(BudgetExceededError) as excinfo:
            engine.query("select sid from suppliers", budget=1e-9)
        assert excinfo.value.required > excinfo.value.budget

    def test_loaded_market_prices_higher(self):
        engine = make_engine()
        baseline = engine.query("select sid from suppliers").report.price
        engine.catalog.site("s0").enqueue(100.0)  # only replica is swamped
        with pytest.raises(BudgetExceededError):
            engine.query("select sid from suppliers", budget=baseline * 2)

    def test_error_reports_required_price(self):
        engine = make_engine()
        try:
            engine.query("select sid from suppliers", budget=1e-9)
        except BudgetExceededError as error:
            retry = engine.query("select sid from suppliers", budget=error.required)
            assert len(retry.table) == 3


class TestInSubquery:
    def test_parse(self):
        from repro.sql.ast import InSubquery

        statement = parse_sql(
            "select sid from suppliers where sid in (select sid from orders)"
        )
        assert isinstance(statement.where, InSubquery)
        assert statement.where.subquery.table.name == "orders"

    def test_semijoin_by_materialization(self):
        engine = make_engine()
        result = engine.query(
            "select sid, country from suppliers "
            "where sid in (select sid from orders) order by sid"
        )
        assert result.table.column("sid") == ["sup0", "sup1"]

    def test_not_in_subquery(self):
        engine = make_engine()
        result = engine.query(
            "select sid from suppliers "
            "where sid not in (select sid from orders)"
        )
        assert result.table.column("sid") == ["sup2"]

    def test_subquery_with_its_own_filter(self):
        engine = make_engine()
        result = engine.query(
            "select sid from suppliers "
            "where sid in (select sid from orders where total > 6) order by sid"
        )
        assert result.table.column("sid") == ["sup0", "sup1"]

    def test_subquery_combined_with_other_predicates(self):
        engine = make_engine()
        result = engine.query(
            "select sid from suppliers "
            "where sid in (select sid from orders) and country = 'FR'"
        )
        assert result.table.column("sid") == ["sup1"]

    def test_multi_column_subquery_rejected(self):
        from repro.core.errors import QueryError

        engine = make_engine()
        with pytest.raises(QueryError):
            engine.query(
                "select sid from suppliers "
                "where sid in (select sid, total from orders)"
            )

    def test_evaluate_refuses_raw_subquery(self):
        from repro.core.errors import QueryError
        from repro.sql import evaluate

        statement = parse_sql(
            "select sid from t where sid in (select x from u)"
        )
        with pytest.raises(QueryError):
            evaluate(statement.where, {"sid": "a"})
